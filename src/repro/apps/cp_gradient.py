"""Symmetric CP gradient (paper Algorithm 2) and gradient-descent CP.

For factor matrix ``X ∈ R^{n×r}`` and objective
``f(X) = 1/6 ||A − Σ_ℓ x_ℓ ∘ x_ℓ ∘ x_ℓ||²`` the gradient is

    ∇f(X) = X G − Y_sttsv,   G = (XᵀX) ∗ (XᵀX),

where column ``ℓ`` of ``Y_sttsv`` is ``A ×₂ x_ℓ ×₃ x_ℓ`` — ``r``
independent STTSV calls, the bottleneck Algorithm 2 highlights.

``symmetric_cp_decompose`` wraps the gradient in projected gradient
descent with backtracking line search — enough to recover exact
low-rank symmetric factorizations in tests and examples.

The derivative convention: with the 1/6 scaling,
``∂f/∂X = (XᵀX ∗ XᵀX)-weighted X minus the STTSV stack``, matching the
paper's ``Y = X G − Y`` update (line 7 of Algorithm 2). The factor
1/2 ambiguity common in CP-gradient derivations is fixed by the finite-
difference test in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.parallel_sttsv import CommBackend, ParallelSTTSV
from repro.core.partition import TetrahedralPartition
from repro.core.plans import sequential_plan
from repro.errors import ConfigurationError, ConvergenceError
from repro.machine.ledger import CommunicationLedger
from repro.machine.machine import Machine
from repro.machine.recovery import RecoveryPolicy
from repro.machine.transport import Transport
from repro.tensor.packed import PackedSymmetricTensor
from repro.util.seeding import SeedLike, as_generator


def _check_factor(tensor: PackedSymmetricTensor, X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != tensor.n:
        raise ConfigurationError(
            f"factor matrix must have shape ({tensor.n}, r), got {X.shape}"
        )
    return X


def cp_gradient(tensor: PackedSymmetricTensor, X: np.ndarray) -> np.ndarray:
    """Algorithm 2: ``∇f(X) = X ((XᵀX) ∗ (XᵀX)) − [A ×₂ x_ℓ ×₃ x_ℓ]_ℓ``.

    The ``r`` STTSV columns are evaluated through the compiled plan's
    batched ``apply_batch`` — one pass over the tensor operator instead
    of ``r`` independent scatter passes.
    """
    X = _check_factor(tensor, X)
    gram = X.T @ X
    G = gram * gram
    Y = sequential_plan(tensor).apply_batch(X)
    return X @ G - Y


def cp_objective(tensor: PackedSymmetricTensor, X: np.ndarray) -> float:
    """``f(X) = 1/6 ||A − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ||²`` without forming the cube.

    Expansion: ``||A||² − 2⟨A, Σ⟩ + ||Σ||²`` with
    ``⟨A, Σ⟩ = Σ_ℓ A ×₁x_ℓ ×₂x_ℓ ×₃x_ℓ`` and
    ``||Σ||² = Σ_{ℓ,ℓ'} (x_ℓᵀ x_{ℓ'})³``. ``||A||²`` uses the packed
    entries with permutation multiplicities (the cached scatter plan's
    weights sum to exactly the multiplicity of each entry).

    The inner product deliberately uses the ``np.add.at`` scatter
    kernel column by column: its summation order makes the three terms
    cancel bitwise at an exact factorization (pinned by the test
    suite), which the faster batched paths do not guarantee.
    """
    X = _check_factor(tensor, X)
    from repro.core.sttsv_sequential import _scatter_plan, sttsv_packed

    w_i, w_j, w_k = _scatter_plan(tensor.n)[3:]
    norm_a_sq = float(np.sum((w_i + w_j + w_k) * tensor.data**2))
    inner = sum(
        float(X[:, col] @ sttsv_packed(tensor, X[:, col]))
        for col in range(X.shape[1])
    )
    gram = X.T @ X
    norm_model_sq = float(np.sum(gram**3))
    return (norm_a_sq - 2.0 * inner + norm_model_sq) / 6.0


def parallel_cp_gradient(
    partition: TetrahedralPartition,
    tensor: PackedSymmetricTensor,
    X: np.ndarray,
    *,
    backend: CommBackend = CommBackend.POINT_TO_POINT,
    transport: Optional[Transport] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fusion: bool = True,
) -> tuple:
    """Algorithm 2 with the r STTSVs executed in parallel on the simulator.

    Returns ``(gradient, ledger)``. The communication is exactly ``r``
    Algorithm-5 exchanges' worth of words (the paper's claim that STTSV
    dominates CP gradient communication), shipped column-batched so the
    step count stays that of a *single* exchange; the small ``r × r``
    Gram algebra is replicated, as in practice ``r << n``.

    The ``backend`` parameter selects the exchange realization for the
    non-batched fallback; the batched path uses the point-to-point
    schedule. ``transport`` selects who moves the bytes and
    ``recovery`` bounds the integrity-retry loop (DESIGN.md §8);
    both are forwarded to the underlying machine.
    """
    X = _check_factor(tensor, X)
    if backend is CommBackend.POINT_TO_POINT:
        from repro.apps.mttkrp import parallel_symmetric_mttkrp_batched

        Y, ledger = parallel_symmetric_mttkrp_batched(
            partition, tensor, X, transport=transport, recovery=recovery
        )
        gram = X.T @ X
        return X @ (gram * gram) - Y, ledger
    machine = Machine(
        partition.P, transport=transport, recovery=recovery, fusion=fusion
    )
    algo = ParallelSTTSV(partition, tensor.n, backend)
    columns = []
    total = CommunicationLedger(partition.P)
    for col in range(X.shape[1]):
        algo.load(machine, tensor, X[:, col])
        algo.run(machine)
        columns.append(algo.gather_result(machine))
        total.merge(machine.reset_ledger())
    Y = np.column_stack(columns)
    gram = X.T @ X
    return X @ (gram * gram) - Y, total


@dataclass
class CPDecompositionResult:
    """Outcome of gradient-descent symmetric CP."""

    factors: np.ndarray
    objective: float
    iterations: int
    converged: bool
    objective_history: List[float] = field(default_factory=list)


def symmetric_cp_decompose(
    tensor: PackedSymmetricTensor,
    rank: int,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
    initial_step: float = 1.0,
    seed: SeedLike = 0,
    X0: Optional[np.ndarray] = None,
    raise_on_failure: bool = False,
) -> CPDecompositionResult:
    """Gradient descent with backtracking on the symmetric CP objective.

    Converges to a stationary point; for exactly low-rank inputs with a
    good initialization it recovers the factorization to near machine
    precision (tested).
    """
    n = tensor.n
    if X0 is not None:
        X = np.asarray(X0, dtype=np.float64).copy()
        if X.shape != (n, rank):
            raise ConfigurationError(f"X0 must have shape ({n}, {rank})")
    else:
        X = as_generator(seed).normal(scale=1.0 / np.sqrt(n), size=(n, rank))
    objective = cp_objective(tensor, X)
    history = [objective]
    step = initial_step
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        gradient = cp_gradient(tensor, X)
        gradient_norm_sq = float(np.sum(gradient**2))
        if np.sqrt(gradient_norm_sq) <= tolerance:
            converged = True
            break
        # Backtracking line search (Armijo).
        step = min(step * 2.0, 1e6)
        while step > 1e-18:
            candidate = X - step * gradient
            candidate_objective = cp_objective(tensor, candidate)
            if candidate_objective <= objective - 0.5 * step * gradient_norm_sq:
                break
            step *= 0.5
        else:
            break  # line search failed: stationary within precision
        X = X - step * gradient
        objective = cp_objective(tensor, X)
        history.append(objective)
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"CP gradient descent did not converge in {max_iterations} iterations"
        )
    return CPDecompositionResult(
        factors=X,
        objective=objective,
        iterations=iterations,
        converged=converged,
        objective_history=history,
    )
