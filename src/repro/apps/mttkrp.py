"""Symmetric MTTKRP (paper §8): ``Y_{iℓ} = Σ_{j,k} a_ijk X_jℓ X_kℓ``.

The matricized-tensor-times-Khatri-Rao product for a symmetric 3-D
tensor is, column by column, an STTSV with the corresponding factor
column (the paper's closing observation). This module exposes it as a
first-class operation with a sequential kernel, a batched vectorized
kernel, and a parallel variant whose communication is exactly ``r``
optimal STTSV exchanges.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.parallel_sttsv import CommBackend, ParallelSTTSV
from repro.core.partition import TetrahedralPartition
from repro.core.plans import sequential_plan
from repro.core.sttsv_sequential import sttsv
from repro.errors import ConfigurationError
from repro.machine.ledger import CommunicationLedger
from repro.machine.machine import Machine
from repro.machine.recovery import RecoveryPolicy
from repro.machine.transport import Transport
from repro.tensor.packed import PackedSymmetricTensor


def _check_factor(tensor: PackedSymmetricTensor, X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != tensor.n:
        raise ConfigurationError(
            f"factor matrix must have shape ({tensor.n}, r), got {X.shape}"
        )
    return X


def symmetric_mttkrp(
    tensor: PackedSymmetricTensor, X: np.ndarray
) -> np.ndarray:
    """Column-by-column reference: ``Y[:, ℓ] = A ×₂ x_ℓ ×₃ x_ℓ``."""
    X = _check_factor(tensor, X)
    return np.column_stack(
        [sttsv(tensor, X[:, col]) for col in range(X.shape[1])]
    )


def symmetric_mttkrp_batched(
    tensor: PackedSymmetricTensor, X: np.ndarray
) -> np.ndarray:
    """All columns through the compiled plan's batched engine.

    Processes the whole factor matrix at once: the plan's ``gemm``
    strategy reduces the batch with a single multi-column GEMM over the
    precompiled symmetry-reduced unfolding — one pass over the tensor
    operator regardless of ``r``, which is how a production MTTKRP
    amortizes tensor traffic. See :mod:`repro.core.plans`.
    """
    X = _check_factor(tensor, X)
    return sequential_plan(tensor).apply_batch(X)


def parallel_symmetric_mttkrp(
    partition: TetrahedralPartition,
    tensor: PackedSymmetricTensor,
    X: np.ndarray,
    *,
    backend: CommBackend = CommBackend.POINT_TO_POINT,
    transport: Optional[Transport] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fusion: bool = True,
) -> Tuple[np.ndarray, CommunicationLedger]:
    """Parallel MTTKRP: ``r`` Algorithm-5 executions on the simulator.

    Returns ``(Y, ledger)``; the ledger shows exactly ``r`` times the
    single-STTSV optimal cost in ``r`` times the steps. See
    :func:`parallel_symmetric_mttkrp_batched` for the variant that
    ships all columns per message. ``transport`` selects who moves the
    bytes (caller-owned lifecycle).
    """
    X = _check_factor(tensor, X)
    machine = Machine(
        partition.P, transport=transport, recovery=recovery, fusion=fusion
    )
    algo = ParallelSTTSV(partition, tensor.n, backend)
    total = CommunicationLedger(partition.P)
    columns = []
    for col in range(X.shape[1]):
        algo.load(machine, tensor, X[:, col])
        algo.run(machine)
        columns.append(algo.gather_result(machine))
        total.merge(machine.reset_ledger())
    return np.column_stack(columns), total


def parallel_symmetric_mttkrp_batched(
    partition: TetrahedralPartition,
    tensor: PackedSymmetricTensor,
    X: np.ndarray,
    *,
    transport: Optional[Transport] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fusion: bool = True,
) -> Tuple[np.ndarray, CommunicationLedger]:
    """Column-batched parallel MTTKRP: one exchange for all ``r`` columns.

    Same total words as :func:`parallel_symmetric_mttkrp` (``r`` shards
    per neighbor message instead of a shard per message per column) but
    the *latency* term drops from ``2r(q³/2+3q²/2−1)`` steps to
    ``2(q³/2+3q²/2−1)`` — the standard amortization CP-ALS implementations
    rely on. Each processor runs the Algorithm-5 block kernels on
    ``(b, r)`` row-block *matrices* via batched einsums.
    """
    X = _check_factor(tensor, X)
    n, r = X.shape
    machine = Machine(
        partition.P, transport=transport, recovery=recovery, fusion=fusion
    )
    algo = ParallelSTTSV(partition, n)
    b, shard = algo.b, algo.shard
    from repro.core.distribution import shard_bounds
    from repro.core.parallel_sttsv import pad_tensor
    from repro.tensor.blocks import extract_block

    padded_tensor = pad_tensor(tensor, algo.n_padded)
    X_padded = np.zeros((algo.n_padded, r))
    X_padded[:n] = X

    # Distribute: tensor blocks as usual; factor shards as (shard, r).
    for p in range(machine.P):
        blocks = {
            index: extract_block(padded_tensor, index, b)
            for index in partition.owned_blocks(p)
        }
        shards = {}
        for i in partition.R[p]:
            lo, hi = shard_bounds(partition, i, p, b)
            shards[i] = X_padded[i * b + lo : i * b + hi].copy()
        machine[p].store("tensor_blocks", blocks)
        machine[p].store("X_shards", shards)

    schedule = algo.schedule

    def x_payload(src, dst):
        common = schedule.shared.get((src, dst))
        if not common:
            return None
        shards = machine[src].load("X_shards")
        return np.concatenate([shards[i] for i in sorted(common)], axis=0)

    from repro.machine.collectives import point_to_point_rounds

    received = point_to_point_rounds(
        machine, schedule.rounds, x_payload, tag="mttkrp-x"
    )
    for p in range(machine.P):
        proc = machine[p]
        full = {i: np.zeros((b, r)) for i in partition.R[p]}
        for i, shard_block in proc.load("X_shards").items():
            lo, hi = shard_bounds(partition, i, p, b)
            full[i][lo:hi] = shard_block
        for src, payload in received[p].items():
            common = schedule.shared.get((src, p))
            if not common:
                continue
            offset = 0
            for i in sorted(common):
                lo, hi = shard_bounds(partition, i, src, b)
                full[i][lo:hi] = payload[offset : offset + (hi - lo)]
                offset += hi - lo
        proc.store("X_full", full)

    # Batched block kernels: the Algorithm-5 case split with matrix x.
    for p in range(machine.P):
        proc = machine[p]
        X_full = proc.load("X_full")
        partial = {i: np.zeros((b, r)) for i in partition.R[p]}
        for (I, J, K), block in proc.load("tensor_blocks").items():
            if I > J > K:
                partial[I] += 2.0 * np.einsum(
                    "ijk,jl,kl->il", block, X_full[J], X_full[K], optimize=True
                )
                partial[J] += 2.0 * np.einsum(
                    "ijk,il,kl->jl", block, X_full[I], X_full[K], optimize=True
                )
                partial[K] += 2.0 * np.einsum(
                    "ijk,il,jl->kl", block, X_full[I], X_full[J], optimize=True
                )
            elif I == J and J > K:
                partial[I] += 2.0 * np.einsum(
                    "ijk,jl,kl->il", block, X_full[I], X_full[K], optimize=True
                )
                partial[K] += np.einsum(
                    "ijk,il,jl->kl", block, X_full[I], X_full[I], optimize=True
                )
            elif I > J and J == K:
                partial[I] += np.einsum(
                    "ijk,jl,kl->il", block, X_full[K], X_full[K], optimize=True
                )
                partial[K] += 2.0 * np.einsum(
                    "ijk,il,kl->jl", block, X_full[I], X_full[K], optimize=True
                )
            else:
                partial[I] += np.einsum(
                    "ijk,jl,kl->il", block, X_full[I], X_full[I], optimize=True
                )
        proc.store("Y_partial", partial)

    def y_payload(src, dst):
        common = schedule.shared.get((src, dst))
        if not common:
            return None
        partial = machine[src].load("Y_partial")
        pieces = []
        for i in sorted(common):
            lo, hi = shard_bounds(partition, i, dst, b)
            pieces.append(partial[i][lo:hi])
        return np.concatenate(pieces, axis=0)

    received = point_to_point_rounds(
        machine, schedule.rounds, y_payload, tag="mttkrp-y"
    )
    Y = np.full((algo.n_padded, r), np.nan)
    for p in range(machine.P):
        proc = machine[p]
        partial = proc.load("Y_partial")
        for i in partition.R[p]:
            lo, hi = shard_bounds(partition, i, p, b)
            final = partial[i][lo:hi].copy()
            for src, payload in received[p].items():
                common = schedule.shared.get((src, p))
                if not common:
                    continue
                offset = 0
                for shared_i in sorted(common):
                    if shared_i == i:
                        final += payload[offset : offset + shard]
                    offset += shard
            Y[i * b + lo : i * b + hi] = final
    return Y[:n], machine.ledger
