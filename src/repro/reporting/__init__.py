"""Rendering of paper-style tables and experiment summaries."""

from repro.reporting.tables import (
    render_processor_table,
    render_row_block_table,
    render_schedule,
    format_block,
)

__all__ = [
    "render_processor_table",
    "render_row_block_table",
    "render_schedule",
    "format_block",
]
