"""Rendering of paper-style tables and experiment summaries."""

from repro.reporting.tables import (
    render_processor_table,
    render_row_block_table,
    render_schedule,
    format_block,
)
from repro.reporting.trace import (
    activity_strip,
    fault_summary,
    phase_table,
    round_table,
    service_table,
    utilization,
    word_histogram,
)

__all__ = [
    "render_processor_table",
    "render_row_block_table",
    "render_schedule",
    "format_block",
    "activity_strip",
    "fault_summary",
    "phase_table",
    "round_table",
    "service_table",
    "utilization",
    "word_histogram",
]
