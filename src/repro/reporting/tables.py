"""Text renderings of the paper's Tables 1–3 and Figure 1.

The paper prints everything 1-based; these renderers follow suit so the
output is visually comparable. Note that Steiner systems (and the
matchings inside the partition) are unique only up to relabeling, so
the regenerated tables match the paper's *structurally* — same row
counts, set sizes, replication numbers, and all §6 invariants — not
literally row for row; the benchmark assertions check the structural
properties.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.partition import TetrahedralPartition
from repro.core.schedule import ExchangeSchedule


def format_block(block: Tuple[int, ...]) -> str:
    """1-based rendering of a block index tuple, paper style: (6,4,1)."""
    return "(" + ",".join(str(v + 1) for v in block) + ")"


def format_set(values: Sequence[int]) -> str:
    """1-based rendering of an index set, paper style: {1,2,6,10}."""
    return "{" + ",".join(str(v + 1) for v in sorted(values)) + "}"


def render_processor_table(partition: TetrahedralPartition) -> str:
    """Table 1 / Table 3 left half: ``p | R_p | N_p | D_p`` rows."""
    lines = [f"{'p':>3} | {'R_p':<24} | {'N_p':<40} | D_p"]
    lines.append("-" * len(lines[0]))
    for p in range(partition.P):
        r_str = format_set(partition.R[p])
        n_str = "{" + ", ".join(format_block(b) for b in partition.N[p]) + "}"
        d_str = "{" + ", ".join(format_block(b) for b in partition.D[p]) + "}"
        lines.append(f"{p + 1:>3} | {r_str:<24} | {n_str:<40} | {d_str}")
    return "\n".join(lines)


def render_row_block_table(partition: TetrahedralPartition) -> str:
    """Table 2 / Table 3 right half: ``i | Q_i`` rows."""
    lines = [f"{'i':>3} | Q_i"]
    lines.append("-" * 40)
    for i in range(partition.m):
        lines.append(f"{i + 1:>3} | {format_set(partition.Q[i])}")
    return "\n".join(lines)


def render_schedule(schedule: ExchangeSchedule) -> str:
    """Figure 1: one line per communication step, arrows ``i -> j``."""
    lines = []
    for index, round_map in enumerate(schedule.rounds):
        arrows = ", ".join(
            f"{src + 1}->{dst + 1}" for src, dst in sorted(round_map.items())
        )
        lines.append(f"step {index + 1:>2}: {arrows}")
    return "\n".join(lines)


def summary_statistics(partition: TetrahedralPartition) -> Dict[str, int]:
    """Structural invariants to compare against the paper's tables."""
    sizes_r = {len(r) for r in partition.R}
    sizes_n = {len(nn) for nn in partition.N}
    sizes_q = {len(qq) for qq in partition.Q}
    return {
        "P": partition.P,
        "m": partition.m,
        "r": partition.r,
        "R_size": sizes_r.pop() if len(sizes_r) == 1 else -1,
        "N_size": sizes_n.pop() if len(sizes_n) == 1 else -1,
        "D_max": max(len(dd) for dd in partition.D),
        "D_total": sum(len(dd) for dd in partition.D),
        "Q_size": sizes_q.pop() if len(sizes_q) == 1 else -1,
    }
