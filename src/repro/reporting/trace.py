"""Communication traces: human-readable views of a ledger's rounds.

Turns a :class:`~repro.machine.ledger.CommunicationLedger` into text
summaries — a per-round table and a per-processor activity strip — used
for debugging algorithms and for eyeballing that a schedule's rounds
are balanced (every processor busy every step, uniform message sizes).
:func:`phase_table` renders the wall-clock side: the per-phase timers
collected by :class:`~repro.obs.instrument.Instrumentation`;
:func:`fault_summary` renders the robustness side: the ledger's
``retry_*`` recovery counters plus, when a
:class:`~repro.machine.transport.faults.FaultInjectingTransport` is in
play, its per-kind injection counts. :func:`service_table` renders the
serving side: the ``STATS`` snapshot of a running
:class:`~repro.service.server.STTSVServer` as per-session tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.instrument import Instrumentation
from repro.machine.ledger import CommunicationLedger
from repro.obs.tracing import Span


def round_table(ledger: CommunicationLedger, limit: Optional[int] = None) -> str:
    """One line per round: label, message count, words, permutation flag.

    An empty ledger renders as the header plus an explicit
    ``(no rounds recorded)`` line rather than a bare header.
    """
    lines = [f"{'#':>4} {'label':<24} {'msgs':>5} {'words':>7} {'perm':>5}"]
    if not ledger.rounds:
        lines.append("(no rounds recorded)")
        return "\n".join(lines)
    rounds = ledger.rounds if limit is None else ledger.rounds[:limit]
    for index, record in enumerate(rounds):
        total = sum(message.words for message in record.messages)
        flag = "yes" if record.is_permutation_round() else "NO"
        lines.append(
            f"{index:>4} {record.label[:24]:<24} {len(record.messages):>5}"
            f" {total:>7} {flag:>5}"
        )
    if limit is not None and len(ledger.rounds) > limit:
        lines.append(f"... ({len(ledger.rounds) - limit} more rounds)")
    return "\n".join(lines)


def activity_strip(ledger: CommunicationLedger, limit: int = 40) -> str:
    """Per-processor activity across rounds.

    One row per processor; column ``t`` shows ``#`` if the processor
    sent a message in round ``t``, ``.`` if idle. A fully-utilized
    schedule (the paper's permutation rounds) renders as solid ``#``.
    """
    rounds = ledger.rounds[:limit]
    rows: List[str] = []
    for p in range(ledger.P):
        cells = []
        for record in rounds:
            busy = any(message.source == p for message in record.messages)
            cells.append("#" if busy else ".")
        rows.append(f"p{p:<3} " + "".join(cells))
    header = "     " + "".join(str(t % 10) for t in range(len(rounds)))
    return "\n".join([header] + rows)


def utilization(ledger: CommunicationLedger) -> float:
    """Fraction of (processor, round) slots with a send.

    The optimal schedule's rounds are full permutations, so utilization
    is exactly 1.0 there; ring baselines and tree collectives sit lower.
    """
    if not ledger.rounds or ledger.P == 0:
        return 0.0
    busy = 0
    for record in ledger.rounds:
        busy += len({message.source for message in record.messages})
    return busy / (len(ledger.rounds) * ledger.P)


def word_histogram(ledger: CommunicationLedger) -> Dict[int, int]:
    """Message-size histogram: {words: count} over all messages."""
    histogram: Dict[int, int] = {}
    for record in ledger.rounds:
        for message in record.messages:
            histogram[message.words] = histogram.get(message.words, 0) + 1
    return histogram


def phase_table(
    instrument: Instrumentation, limit: Optional[int] = None
) -> str:
    """Wall-clock per-phase summary from an instrumentation registry.

    One line per span name: entry count, total and mean milliseconds.
    Complements :func:`round_table` — rounds show the *model* cost,
    phases show where real time went under the active transport.
    """
    lines = [f"{'phase':<28} {'count':>6} {'total ms':>10} {'mean ms':>10}"]
    timings = list(instrument.timings().values())
    if not timings:
        lines.append("(no phases recorded)")
        return "\n".join(lines)
    if limit is not None:
        timings = timings[:limit]
    for record in timings:
        lines.append(
            f"{record.name[:28]:<28} {record.count:>6}"
            f" {record.total_seconds * 1e3:>10.3f}"
            f" {record.mean_seconds * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def fault_summary(ledger: CommunicationLedger, transport=None) -> str:
    """Recovery and fault-injection report for one run.

    Always renders the ledger's retry side-channel (rounds, words, and
    messages spent redelivering payloads that failed end-of-round
    integrity verification — zero on a healthy network). When
    ``transport`` exposes fault-injection ``stats`` (a
    :class:`~repro.machine.transport.faults.FaultInjectingTransport`,
    possibly reached through wrapper forwarding), the injected counts
    are appended so injected faults and recovered cost can be compared
    side by side. The algorithmic counters (``words_sent`` etc.) are
    untouched by either — that separation is the point.
    """
    lines = [
        f"{'recovery':<20} {'count':>8}",
        f"{'retry rounds':<20} {ledger.retry_rounds:>8}",
        f"{'retry words':<20} {ledger.retry_words:>8}",
        f"{'retry messages':<20} {ledger.retry_messages:>8}",
    ]
    stats = getattr(transport, "stats", None)
    if stats is not None and hasattr(stats, "as_dict"):
        lines.append(f"{'injected faults':<20} {'count':>8}")
        for kind, count in stats.as_dict().items():
            lines.append(f"{kind:<20} {count:>8}")
    return "\n".join(lines)


def trace_table(
    spans: Sequence[Span], trace_id: Optional[str] = None
) -> str:
    """Render collected spans as an indented call tree.

    Spans nest by ``parent_id`` (children ordered by ``seq``); a span
    whose parent is absent from the input — filtered out, or rotated
    out of the tracer's ring buffer — renders as a root. Pass
    ``trace_id`` to restrict the tree to spans carrying that id. The
    same function renders live :meth:`Tracer.spans` output and spans
    reloaded from a JSON-lines dump — the exporter round-trip test
    asserts both renderings are identical.
    """
    if trace_id is not None:
        spans = [s for s in spans if trace_id in s.trace_ids]
    header = f"{'span':<44} {'kind':<10} {'ms':>9}  traces"
    if not spans:
        return "\n".join([header, "(no spans recorded)"])
    spans = sorted(spans, key=lambda s: s.seq)
    present = {span.span_id for span in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in present else None
        children.setdefault(parent, []).append(span)

    lines = [header]

    def render(span: Span, depth: int) -> None:
        name = ("  " * depth + span.name)[:44]
        traces = ",".join(span.trace_ids) or "-"
        lines.append(
            f"{name:<44} {span.kind:<10}"
            f" {span.duration_s * 1e3:>9.3f}  {traces}"
        )
        for child in children.get(span.span_id, []):
            render(child, depth + 1)

    for root in children.get(None, []):
        render(root, 0)
    return "\n".join(lines)


def service_table(stats: Dict) -> str:
    """Human-readable rendering of a server ``STATS`` snapshot.

    Takes the JSON payload of the serving layer's ``STATS`` endpoint
    (:meth:`~repro.service.server.STTSVServer.stats`) and renders the
    admission counters, the warm-session pool occupancy, and one block
    per session — request totals, latency percentiles, the batch-size
    histogram (the coalescing evidence), and the communication/retry
    counters absorbed from parallel-mode runs. Unknown or missing
    fields render as zeros, so the table is robust to stats from older
    servers.
    """
    server = stats.get("server", {})
    pool = stats.get("pool", {})
    sessions = stats.get("sessions", {})
    lines = [f"{'server':<22} {'value':>10}"]
    for name in (
        "accepted",
        "rejected_overload",
        "deadline_exceeded",
        "bad_requests",
        "internal_errors",
        "connections_opened",
        "registrations",
    ):
        lines.append(f"{name:<22} {server.get(name, 0):>10}")
    queue_depth = server.get("queue_depth") or {}
    total_queued = sum(queue_depth.values())
    lines.append(f"{'queued requests':<22} {total_queued:>10}")
    lines.append(
        f"{'pool sessions':<22}"
        f" {pool.get('sessions', 0):>6}/{pool.get('max_sessions', 0)}"
        f" ({pool.get('evictions', 0)} evicted)"
    )
    recent = stats.get("recent_traces") or []
    if recent:
        lines.append(f"{'recent traces':<22} " + " ".join(recent[:8]))
    if not sessions:
        lines.append("(no sessions registered)")
        return "\n".join(lines)
    for label in sorted(sessions):
        session = sessions[label]
        latency = session.get("latency", {})
        histogram = session.get("batch_size_histogram", {})
        histogram_text = (
            " ".join(
                f"{size}x{histogram[size]}"
                for size in sorted(histogram, key=int)
            )
            or "(empty)"
        )
        lines.append("")
        lines.append(f"session {label}")
        lines.append(
            f"  requests {session.get('requests', 0)}"
            f" (batched frames {session.get('batch_requests', 0)},"
            f" errors {session.get('errors', 0)})"
        )
        lines.append(
            f"  latency ms: p50 {latency.get('p50_ms', 0.0):.2f}"
            f"  p95 {latency.get('p95_ms', 0.0):.2f}"
            f"  p99 {latency.get('p99_ms', 0.0):.2f}"
            f"  max {latency.get('max_ms', 0.0):.2f}"
        )
        lines.append(f"  batch sizes: {histogram_text}")
        lines.append(
            f"  parallel runs {session.get('parallel_runs', 0)}:"
            f" {session.get('comm_rounds', 0)} rounds,"
            f" {session.get('comm_words', 0)} words/proc,"
            f" retries {session.get('retry_rounds', 0)}r/"
            f"{session.get('retry_words', 0)}w/"
            f"{session.get('retry_messages', 0)}m"
        )
        if session.get("failed_over"):
            lines.append("  FAILED OVER to the simulated transport")
        for warning in session.get("warnings", []):
            lines.append(f"  warning: {warning}")
    return "\n".join(lines)


def gateway_table(stats: Dict) -> str:
    """Human-readable rendering of a gateway ``STATS`` snapshot.

    Takes the JSON payload of
    :meth:`~repro.service.gateway.STTSVGateway.stats` — recognizable by
    its top-level ``"gateway"`` key — and renders the hash ring, the
    per-shard health/traffic table, tensor placements, and the
    membership event counters (reroutes, rebalanced registrations,
    drains). ``repro stats`` picks this renderer automatically when the
    scraped endpoint is a gateway.
    """
    gateway = stats.get("gateway", {})
    ring = gateway.get("ring", {})
    shards = gateway.get("shards", {})
    tensors = gateway.get("tensors", {})
    events = gateway.get("events", {})
    server = gateway.get("server", {})
    lines = [
        f"gateway: {len(ring.get('nodes', []))} shards on ring"
        f" ({ring.get('points', 0)} virtual nodes,"
        f" {ring.get('vnodes_per_node', 0)}/shard)"
    ]
    lines.append("")
    lines.append(
        f"{'shard':<24} {'state':<10} {'requests':>9}"
        f" {'errors':>7} {'inflight':>9}  tensors"
    )
    for name in sorted(shards):
        shard = shards[name]
        resident = shard.get("resident_tensors", [])
        resident_text = " ".join(resident[:6]) or "-"
        if len(resident) > 6:
            resident_text += f" (+{len(resident) - 6})"
        lines.append(
            f"{name:<24} {shard.get('state', '?'):<10}"
            f" {shard.get('requests', 0):>9}"
            f" {shard.get('errors', 0):>7}"
            f" {shard.get('inflight', 0):>9}  {resident_text}"
        )
    if tensors:
        lines.append("")
        lines.append(f"{'tensor':<22} {'q':>3} {'P':>4}  owners")
        for tensor_id in sorted(tensors):
            record = tensors[tensor_id]
            lines.append(
                f"{tensor_id:<22} {record.get('q', 0):>3}"
                f" {record.get('P', 0):>4}"
                f"  {' -> '.join(record.get('owners', []))}"
            )
    lines.append("")
    lines.append(f"{'events':<26} {'count':>8}")
    for name in sorted(events):
        lines.append(f"{name:<26} {events[name]:>8}")
    for name in (
        "accepted",
        "registrations",
        "rejected_overload",
        "bad_requests",
        "internal_errors",
    ):
        lines.append(f"{name:<26} {server.get(name, 0):>8}")
    return "\n".join(lines)
