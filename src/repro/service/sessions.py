"""Warm engine sessions: resident tensors with compiled state.

A *session* is everything the serving layer keeps hot for one
registered tensor on one machine configuration, keyed by
``SessionKey(tensor_id, q, P, backend)``:

* the :class:`~repro.core.plans.SequentialPlan` (compiled through the
  bounded module cache in :mod:`repro.core.plans`) — the fast batched
  executor behind ``mode="plan"`` requests;
* a live :class:`~repro.machine.machine.Machine` on the requested
  transport with the padded tensor blocks already resident in
  processor memories (``ParallelSTTSV.load_tensor`` runs once at
  registration), so a ``mode="parallel"`` request pays only shard
  distribution + Algorithm 5 + gather — never block extraction;
* per-session :class:`~repro.service.metrics.SessionMetrics`.

:class:`SessionPool` bounds the warm set with the same
:class:`~repro.core.plans.LRUByteCache` policy the plan cache uses —
LRU order refreshed on every lookup, capped by session count and by
resident bytes — and *closes* evicted sessions (machine transports own
real resources: shared-memory segments, worker processes).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, NamedTuple, Optional

import numpy as np

from repro.core.parallel_sttsv import CommBackend, ParallelSTTSV
from repro.core.partition import TetrahedralPartition
from repro.core.plans import LRUByteCache, SequentialPlan, sequential_plan
from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.transport import FaultPolicy, make_transport
from repro.obs.tracing import get_tracer
from repro.service.metrics import SessionMetrics
from repro.steiner import spherical_steiner_system
from repro.tensor.packed import PackedSymmetricTensor

#: Execution modes an apply request can ask for.
MODES = ("plan", "parallel")

#: Default cap on warm sessions kept by the pool.
DEFAULT_MAX_SESSIONS = 8


class SessionKey(NamedTuple):
    """Identity of one warm engine: tensor × machine configuration.

    ``order`` defaults to 3 so existing order-3 call sites (and their
    stats labels) are unchanged; order-m sessions carry it explicitly.
    For order 4 the ``q`` field holds the SQS parameter ``k`` of
    ``S(2^k, 4, 3)`` — the family knob, exactly as ``q`` is the
    spherical knob at order 3.
    """

    tensor_id: str
    q: int
    P: int
    backend: str
    order: int = 3
    kind: str = "dense"

    def label(self) -> str:
        """Stable string form used as the stats-snapshot key."""
        suffix = f",order={self.order}" if self.order != 3 else ""
        if self.kind != "dense":
            suffix += f",{self.kind}"
        return (
            f"{self.tensor_id}@q={self.q},P={self.P},{self.backend}{suffix}"
        )


class EngineSession:
    """One resident tensor with its compiled plan and warm machine.

    ``execute`` / ``apply_batch`` are *not* re-entrant (the simulated
    machine and the plan's reusable buffers are single-stream);
    :attr:`exec_lock` serializes them. The micro-batcher owns the lock
    for batched work; direct callers must take it too.
    """

    def __init__(
        self,
        key: SessionKey,
        tensor: PackedSymmetricTensor,
        strategy: str = "auto",
        faults: Optional[FaultPolicy] = None,
        local_threads: Optional[int] = None,
        fusion: bool = True,
        variant: str = "point-to-point",
    ):
        if key.kind == "symk":
            self._init_symk(key, tensor, strategy, faults, fusion, variant)
            return
        if key.order == 3:
            partition = TetrahedralPartition(spherical_steiner_system(key.q))
            partition.validate()
        elif key.order == 4:
            from repro.core.partition_ndim import QuadruplePartition
            from repro.steiner.boolean import boolean_steiner_system

            partition = QuadruplePartition(boolean_steiner_system(key.q))
            partition.validate()
        else:
            raise ConfigurationError(
                f"sessions support order 3 and 4, got {key.order}"
            )
        if partition.P != key.P:
            raise ConfigurationError(
                f"q={key.q} builds P={partition.P} processors, key says"
                f" {key.P}"
            )
        self.key = key
        self.tensor = tensor
        self.n = tensor.n
        self.faults = faults
        self.fusion = fusion
        self.variant = CommBackend(variant)
        self.machine = Machine(
            partition.P,
            transport=make_transport(key.backend, partition.P, faults=faults),
            fusion=fusion,
        )
        if key.order == 3:
            self.algo = ParallelSTTSV(
                partition,
                tensor.n,
                backend=self.variant,
                local_threads=local_threads,
            )
            self.algo.load_tensor(self.machine, tensor)
            self.plan: SequentialPlan = sequential_plan(
                tensor, strategy=strategy
            )
        else:
            from repro.core.parallel_sttsv_ndim import ParallelSTTSVm
            from repro.core.plans import BlockedPlan

            if strategy not in ("auto", "blocked-gemm"):
                raise ConfigurationError(
                    f"order-4 sessions support only the 'blocked-gemm'"
                    f" plan strategy, got {strategy!r}"
                )
            self.algo = ParallelSTTSVm(
                partition, tensor.n, backend=self.variant
            )
            self.algo.load_tensor(self.machine, tensor)
            self.plan = BlockedPlan(tensor)
        self.metrics = SessionMetrics()
        self.update_epoch = 0
        self.exec_lock = threading.Lock()
        self._closed = False

    def _init_symk(
        self,
        key: SessionKey,
        tensor,
        strategy: str,
        faults: Optional[FaultPolicy],
        fusion: bool,
        variant: str,
    ) -> None:
        """Low-rank session: resident factors, O(nr) plan, and a warm
        :class:`~repro.core.parallel_symk.ParallelSymKTTSV` machine.

        ``key.order`` is the tensor order ``m`` (any ``m >= 2`` — no
        Steiner structure is involved) and ``key.P`` is a free knob.
        """
        from repro.core.parallel_symk import ParallelSymKTTSV
        from repro.tensor.symk import SymKPlan, SymKTensor

        if not isinstance(tensor, SymKTensor):
            raise ConfigurationError(
                f"kind='symk' sessions need a SymKTensor, got"
                f" {type(tensor).__name__}"
            )
        if strategy not in ("auto", "symk"):
            raise ConfigurationError(
                f"symk sessions support only the 'symk' plan strategy,"
                f" got {strategy!r}"
            )
        if key.order != tensor.m:
            raise ConfigurationError(
                f"key says order {key.order}, tensor is order {tensor.m}"
            )
        self.key = key
        self.tensor = tensor
        self.n = tensor.n
        self.faults = faults
        self.fusion = fusion
        self.variant = CommBackend(variant)
        self.machine = Machine(
            key.P,
            transport=make_transport(key.backend, key.P, faults=faults),
            fusion=fusion,
        )
        self.algo = ParallelSymKTTSV(
            key.P, tensor.n, order=tensor.m, backend=self.variant
        )
        self.algo.load_factors(self.machine, tensor)
        self.plan = SymKPlan(tensor)
        self.metrics = SessionMetrics()
        self.update_epoch = 0
        self.exec_lock = threading.Lock()
        self._closed = False

    # -- execution -------------------------------------------------------------

    def apply(self, x: np.ndarray, mode: str = "plan") -> np.ndarray:
        """Serve one vector (single-request path; caller holds
        :attr:`exec_lock`)."""
        if mode == "plan":
            return self.plan.apply(x)
        if mode == "parallel":
            return self._parallel_apply(x)
        raise ConfigurationError(
            f"mode must be one of {MODES}, got {mode!r}"
        )

    def apply_batch(self, X: np.ndarray, mode: str = "plan") -> np.ndarray:
        """Serve an ``n × s`` batch (caller holds :attr:`exec_lock`).

        ``mode="parallel"`` loops Algorithm 5 column by column on the
        warm machine, so every column is bitwise identical to an
        unbatched request — coalescing never changes a result. The
        plan path inherits its strategy's guarantee (``bincount``
        batches bitwise-equal a column loop; ``gemm`` agrees to the
        last ulp — see :mod:`repro.core.plans`).
        """
        if mode == "plan":
            return self.plan.apply_batch(X)
        if mode == "parallel":
            X = np.asarray(X, dtype=np.float64)
            if X.ndim != 2 or X.shape[0] != self.n:
                raise ConfigurationError(
                    f"batch must have shape ({self.n}, s), got {X.shape}"
                )
            return np.column_stack(
                [self._parallel_apply(X[:, col]) for col in range(X.shape[1])]
            )
        raise ConfigurationError(
            f"mode must be one of {MODES}, got {mode!r}"
        )

    def update_rank1(self, weight: float, vector: np.ndarray) -> int:
        """Fold one streamed rank-1 term into the resident factors
        (caller holds :attr:`exec_lock`) and advance the update epoch.

        Both the serial plan's tensor and the warm machine's
        distributed blocks are extended, so the very next apply — on
        either path — reflects the update, bitwise identical to a
        rebuild from scratch. Returns the new epoch.
        """
        if self.key.kind != "symk":
            raise ConfigurationError(
                f"only kind='symk' sessions accept rank-1 updates,"
                f" this session is {self.key.kind!r}"
            )
        self.tensor.rank1_update(weight, vector)
        self.algo.rank1_update(weight, vector)
        self.update_epoch += 1
        self.metrics.incr("updates")
        return self.update_epoch

    def _parallel_apply(self, x: np.ndarray) -> np.ndarray:
        self.algo.load_vector(self.machine, x)
        self.algo.run(self.machine)
        y = self.algo.gather_result(self.machine)
        # Fold the run's communication counters into the metrics and
        # reset, so the ledger's per-round records stay bounded over a
        # long-lived session.
        self.metrics.absorb_ledger(self.machine.reset_ledger())
        return y

    # -- accounting ------------------------------------------------------------

    def nbytes(self) -> int:
        """Resident bytes the pool budgets for: packed tensor data (or
        low-rank factors) plus compiled plan state (machine buffers are
        proportional)."""
        if self.key.kind == "symk":
            return int(self.tensor.nbytes) + self.plan.nbytes()
        return int(self.tensor.data.nbytes) + self.plan.nbytes()

    def snapshot(self) -> Dict:
        """Stats-endpoint view: serving counters + machine-layer
        instrumentation, retry, fault, and failover state."""
        transport = self.machine.transport
        stats = getattr(transport, "stats", None)
        return {
            "n": self.n,
            "q": self.key.q,
            "P": self.key.P,
            "order": self.key.order,
            "kind": self.key.kind,
            "rank": (
                self.tensor.r if self.key.kind == "symk" else None
            ),
            "update_epoch": self.update_epoch,
            "backend": self.key.backend,
            "variant": self.variant.value,
            "plan_strategy": self.plan.strategy,
            "fusion": self.fusion,
            "session_bytes": self.nbytes(),
            **self.metrics.snapshot(),
            "phases": self.machine.instrument.as_dict(),
            "warnings": list(self.machine.instrument.warnings),
            "failed_over": self.machine.failed_over,
            "faults_injected": (
                stats.as_dict() if hasattr(stats, "as_dict") else None
            ),
        }

    def close(self) -> None:
        """Release the machine's transport (idempotent); waits for any
        in-flight execution so workers are never yanked mid-round."""
        with self.exec_lock:
            if not self._closed:
                self._closed = True
                self.machine.close()

    @property
    def closed(self) -> bool:
        return self._closed


class SessionPool:
    """LRU pool of warm sessions with count and byte bounds.

    Reuses :class:`~repro.core.plans.LRUByteCache` — the same policy
    that bounds the compiled-plan cache — with eviction closing the
    session (and notifying ``on_evict`` so the server can tear down the
    session's batch lane first).
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        byte_budget: Optional[int] = None,
        on_evict: Optional[Callable[[SessionKey, EngineSession], None]] = None,
    ):
        self._on_evict_extra = on_evict
        self._cache = LRUByteCache(
            maxsize=max_sessions,
            byte_budget=byte_budget,
            on_evict=self._evict,
        )
        self._lock = threading.Lock()

    def _evict(self, key: SessionKey, session: EngineSession) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                f"evict:{key.label()}",
                kind="eviction",
                attrs={
                    "session": key.label(),
                    "session_bytes": session.nbytes(),
                },
            )
        if self._on_evict_extra is not None:
            self._on_evict_extra(key, session)
        session.close()

    def get(self, key: SessionKey) -> Optional[EngineSession]:
        """Warm lookup (refreshes LRU recency)."""
        return self._cache.get(key)

    def put(self, key: SessionKey, session: EngineSession) -> None:
        """Admit a session; a same-key predecessor is closed, and cold
        sessions are evicted until the bounds hold."""
        with self._lock:
            old = self._cache.discard(key)
            if old is not None:
                self._evict(key, old)
            self._cache.put(key, session, session.nbytes())

    def keys(self) -> List[SessionKey]:
        """Session keys from coldest to hottest."""
        return self._cache.keys()

    def info(self):
        """Pool occupancy/eviction counters (``CacheInfo``)."""
        return self._cache.info()

    def clear(self) -> None:
        """Close every session (server shutdown)."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: SessionKey) -> bool:
        return key in self._cache
