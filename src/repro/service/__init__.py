"""STTSV serving layer: request broker, warm sessions, live metrics.

The serving stack composes, bottom to top:

* :mod:`repro.service.protocol` — versioned length-prefixed frames
  with typed error replies;
* :mod:`repro.service.sessions` — warm :class:`EngineSession` pool
  (resident tensor blocks + compiled plan per
  ``(tensor_id, q, P, backend)``), LRU-bounded;
* :mod:`repro.service.batcher` — :class:`DynamicBatcher`, coalescing
  concurrent applies into batched executions with explicit
  backpressure;
* :mod:`repro.service.metrics` — latency percentiles, batch-size
  histogram, machine-layer counters;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  threaded TCP endpoints (``repro serve`` / ``repro load``).
"""

from repro.service.batcher import DynamicBatcher
from repro.service.client import ServiceClient, run_load
from repro.service.metrics import (
    BatchSizeHistogram,
    LatencyRecorder,
    ServerMetrics,
    SessionMetrics,
)
from repro.service.protocol import (
    ErrorCode,
    MessageType,
    ProtocolError,
    ServiceError,
)
from repro.service.server import STTSVServer
from repro.service.sessions import EngineSession, SessionKey, SessionPool

__all__ = [
    "BatchSizeHistogram",
    "DynamicBatcher",
    "EngineSession",
    "ErrorCode",
    "LatencyRecorder",
    "MessageType",
    "ProtocolError",
    "STTSVServer",
    "ServerMetrics",
    "ServiceClient",
    "ServiceError",
    "SessionKey",
    "SessionMetrics",
    "SessionPool",
    "run_load",
]
