"""STTSV serving layer: request broker, warm sessions, live metrics.

The serving stack composes, bottom to top:

* :mod:`repro.service.protocol` — versioned length-prefixed frames
  with typed error replies;
* :mod:`repro.service.sessions` — warm :class:`EngineSession` pool
  (resident tensor blocks + compiled plan per
  ``(tensor_id, q, P, backend)``), LRU-bounded;
* :mod:`repro.service.batcher` — :class:`DynamicBatcher`, coalescing
  concurrent applies into batched executions with explicit
  backpressure;
* :mod:`repro.service.metrics` — latency percentiles, batch-size
  histogram, machine-layer counters;
* :mod:`repro.service.eventloop` — the selector-driven non-blocking
  connection layer (:class:`FrameLoopServer`) both endpoints run on;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  shard server and auto-reconnecting client (``repro serve`` /
  ``repro load``);
* :mod:`repro.service.ring` / :mod:`repro.service.gateway` — the
  consistent-hash fleet tier (``repro gateway`` /
  ``repro serve --fleet N``): N shard processes behind one router
  with replicated registrations and graceful drain.
"""

from repro.service.batcher import DynamicBatcher
from repro.service.client import ServiceClient, run_load
from repro.service.eventloop import FrameLoopServer, Reply
from repro.service.gateway import LocalFleet, STTSVGateway
from repro.service.metrics import (
    BatchSizeHistogram,
    LatencyRecorder,
    ServerMetrics,
    SessionMetrics,
)
from repro.service.protocol import (
    ConnectionClosedMidFrame,
    ErrorCode,
    FrameReader,
    MessageType,
    ProtocolError,
    ServiceError,
)
from repro.service.ring import HashRing, ring_key
from repro.service.server import STTSVServer
from repro.service.sessions import EngineSession, SessionKey, SessionPool

__all__ = [
    "BatchSizeHistogram",
    "ConnectionClosedMidFrame",
    "DynamicBatcher",
    "EngineSession",
    "ErrorCode",
    "FrameLoopServer",
    "FrameReader",
    "HashRing",
    "LatencyRecorder",
    "LocalFleet",
    "MessageType",
    "ProtocolError",
    "Reply",
    "STTSVGateway",
    "STTSVServer",
    "ServerMetrics",
    "ServiceClient",
    "ServiceError",
    "SessionKey",
    "SessionMetrics",
    "SessionPool",
    "ring_key",
    "run_load",
]
