"""Event-loop TCP server fronting warm STTSV engine sessions.

Request path for ``APPLY``::

    client ──frame──▶ event loop ──dispatch──▶ executor worker
                                                    │ submit
                                              DynamicBatcher lane
                                                    │ (coalesce)
    client ◀─frame── event loop ◀─reply── EngineSession.apply_batch

The connection layer is the non-blocking selector loop of
:class:`~repro.service.eventloop.FrameLoopServer`: one thread owns
every socket, feeds incremental frame readers, and writes replies as
sockets accept them — no thread per connection. Engine work never runs
on the loop: complete frames dispatch (serially per connection) to a
bounded executor, where the handler enqueues into the
:class:`~repro.service.batcher.DynamicBatcher` and blocks on the
returned future — which is what lets concurrent requests from
independent connections coalesce into one batched execution, exactly
as before the refactor. Sessions, batcher lanes, and trace
propagation keep their seams unchanged.

Failure discipline: every error a request can cause becomes a typed
``ERROR`` reply (:class:`~repro.service.protocol.ErrorCode`) on that
request's connection; the server never prints a traceback and never
dies because of one request. Backpressure is immediate and two-layer —
a full batcher lane is an ``OVERLOADED`` reply from the worker, a
saturated executor is an ``OVERLOADED`` reply straight from the loop —
so a saturated server stays observable (``STATS`` still answers) and
recoverable.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from contextlib import nullcontext
from typing import Dict, Optional, Tuple

from repro.machine.transport import TRANSPORTS, FaultPolicy
from repro.obs.export import prometheus_text, spans_to_jsonl
from repro.obs.metrics import (
    MetricFamily,
    MetricsRegistry,
    Sample,
    default_registry,
)
from repro.obs.tracing import get_tracer, new_trace_id, trace_context
from repro.planner import Calibration, auto_session_config, auto_symk_config
from repro.planner.pricing import VARIANTS
from repro.service.batcher import (
    DEFAULT_ADMISSION_CAPACITY,
    DEFAULT_MAX_BATCH,
    DynamicBatcher,
)
from repro.service.eventloop import (
    DEFAULT_EXECUTOR_WORKERS,
    FrameLoopServer,
    Reply,
)
from repro.service.metrics import ServerMetrics
from repro.service.protocol import (
    ErrorCode,
    MessageType,
    ServiceError,
    decode_array,
    encode_array,
)
from repro.service.sessions import (
    DEFAULT_MAX_SESSIONS,
    EngineSession,
    SessionKey,
    SessionPool,
)
from repro.tensor.ndpacked import NdPackedSymmetricTensor, nd_packed_size
from repro.tensor.packed import PackedSymmetricTensor, packed_size

#: Grace added to a request deadline when waiting on its future: the
#: batcher enforces expiry at dequeue; this only guards against a
#: wedged execution.
_DEADLINE_GRACE_S = 5.0

#: Reusable no-op context for the tracing-disabled fast path.
_NULL_SPAN = nullcontext(None)


class STTSVServer(FrameLoopServer):
    """Serve STTSV applies over TCP with dynamic batching.

    ``port=0`` (the default) binds an ephemeral port; read
    :attr:`address` after :meth:`start`. The server object doubles as a
    context manager::

        with STTSVServer() as server:
            host, port = server.address
            ...

    Tests drive deterministic coalescing/overload through
    :attr:`batcher` (``hold()`` / ``release()``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        session_byte_budget: Optional[int] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = 0.0,
        admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
        faults: Optional[FaultPolicy] = None,
        fusion: bool = True,
        tracing: bool = True,
        registry: Optional[MetricsRegistry] = None,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
        max_inflight: Optional[int] = None,
        calibration_path: Optional[str] = None,
        accepted_orders: Tuple[int, ...] = (3, 4),
    ):
        super().__init__(
            host=host,
            port=port,
            executor_workers=executor_workers,
            max_inflight=max_inflight,
            name="sttsv",
        )
        self.faults = faults
        #: Tensor orders this server admits at registration.
        self.accepted_orders = tuple(accepted_orders)
        #: Whether sessions created by this server fuse their exchange
        #: rounds into per-destination buffers (default on).
        self.fusion = fusion
        #: Calibration file auto-mode registrations price with (None =
        #: the default path, falling back to documented constants).
        self.calibration_path = calibration_path
        #: Whether this server turns on the process tracer while it
        #: runs (the prior tracer state is restored on :meth:`stop`).
        self.tracing = tracing
        self.registry = registry if registry is not None else default_registry()
        self._tracer_was_enabled = False
        self.metrics = ServerMetrics()
        self.pool = SessionPool(
            max_sessions=max_sessions,
            byte_budget=session_byte_budget,
            on_evict=self._on_session_evicted,
        )
        self.batcher = DynamicBatcher(
            max_wait_ms=max_wait_ms,
            max_batch=max_batch,
            admission_capacity=admission_capacity,
            on_batch=self._on_batch_executed,
        )
        #: ``tensor_id -> SessionKey`` routing table.
        self._routes: Dict[str, SessionKey] = {}
        self._routes_lock = threading.Lock()

    # -- lifecycle hooks -------------------------------------------------------

    def on_start(self) -> None:
        tracer = get_tracer()
        self._tracer_was_enabled = tracer.enabled
        if self.tracing:
            tracer.enable()
        self.registry.register_collector(self._collect_metrics)

    def on_stop(self) -> None:
        """Drain and release: pending requests fail ``SHUTTING_DOWN``,
        all sessions close, collectors and tracer state restore."""
        self.batcher.close()
        with self._routes_lock:
            self._routes.clear()
        self.pool.clear()
        self.registry.unregister_collector(self._collect_metrics)
        if self.tracing and not self._tracer_was_enabled:
            get_tracer().disable()

    def __enter__(self) -> "STTSVServer":
        self.start()
        return self

    # -- loop hooks ------------------------------------------------------------

    def note_connection(self) -> None:
        self.metrics.incr("connections_opened")

    def note_bad_frame(self) -> None:
        self.metrics.incr("bad_requests")

    def note_error(self, code: ErrorCode) -> None:
        if code == ErrorCode.OVERLOADED:
            self.metrics.incr("rejected_overload")
        elif code == ErrorCode.DEADLINE_EXCEEDED:
            self.metrics.incr("deadline_exceeded")
        elif code == ErrorCode.INTERNAL:
            self.metrics.incr("internal_errors")
        else:
            self.metrics.incr("bad_requests")

    # -- callbacks -------------------------------------------------------------

    def _on_session_evicted(self, key: SessionKey, session: EngineSession):
        """Pool eviction: fail that session's queued work and drop its
        route before the pool closes the machine."""
        self.batcher.close_lanes(key)
        with self._routes_lock:
            if self._routes.get(key.tensor_id) == key:
                del self._routes[key.tensor_id]

    def _on_batch_executed(self, key: SessionKey, mode: str, size: int):
        session = self.pool.get(key)
        if session is not None:
            session.metrics.batch_sizes.record(size)

    # -- metrics collector ------------------------------------------------------

    def _collect_metrics(self) -> "list[MetricFamily]":
        """Scrape-time view of this server for the metrics registry:
        admission counters, queue depths, pool occupancy, and
        per-session serving/communication totals. Registered on
        :meth:`start`, removed on :meth:`stop`; costs nothing between
        scrapes."""
        server = self.metrics.snapshot()
        events = MetricFamily(
            "sttsv_server_events_total", "counter",
            "Server admission and lifecycle events by kind",
            [
                Sample(labels=(("event", name),), value=float(count))
                for name, count in sorted(server.items())
            ],
        )
        depth = MetricFamily(
            "sttsv_queue_depth", "gauge",
            "Requests waiting in each batcher lane",
            [
                Sample(labels=(("lane", lane),), value=float(waiting))
                for lane, waiting in sorted(
                    self.batcher.queue_depths().items()
                )
            ],
        )
        connections = MetricFamily(
            "sttsv_open_connections", "gauge",
            "Connections currently owned by the event loop",
            [Sample(labels=(), value=float(self.connection_count()))],
        )
        info = self.pool.info()
        pool = [
            MetricFamily(
                "sttsv_pool_sessions", "gauge",
                "Warm sessions currently resident",
                [Sample(labels=(), value=float(info.currsize))],
            ),
            MetricFamily(
                "sttsv_pool_bytes", "gauge",
                "Bytes of resident session state",
                [Sample(labels=(), value=float(info.nbytes))],
            ),
            MetricFamily(
                "sttsv_pool_evictions_total", "counter",
                "Sessions evicted by the pool's LRU/byte bounds",
                [Sample(labels=(), value=float(info.evictions))],
            ),
        ]
        session_counters = [
            "requests", "batch_requests", "parallel_runs",
            "comm_rounds", "comm_words",
            "retry_rounds", "retry_words", "retry_messages",
        ]
        per_session: Dict[str, list] = {name: [] for name in session_counters}
        latency: list = []
        for key in self.pool.keys():
            session = self.pool.get(key)
            if session is None or session.closed:
                continue
            snap = session.snapshot()
            label = (("session", key.label()),)
            for name in session_counters:
                per_session[name].append(
                    Sample(labels=label, value=float(snap.get(name, 0)))
                )
            for quantile in ("p50_ms", "p95_ms", "p99_ms"):
                latency.append(
                    Sample(
                        labels=label + (("quantile", quantile),),
                        value=float(snap["latency"][quantile]),
                    )
                )
        sessions = [
            MetricFamily(
                f"sttsv_session_{name}_total", "counter",
                f"Per-session {name.replace('_', ' ')} served",
                samples,
            )
            for name, samples in per_session.items()
            if samples
        ]
        if latency:
            sessions.append(
                MetricFamily(
                    "sttsv_session_latency_ms", "gauge",
                    "Per-session request latency percentiles",
                    latency,
                )
            )
        return [events, depth, connections, *pool, *sessions]

    # -- request dispatch ------------------------------------------------------

    def handle_request(
        self, msg_type: MessageType, header: Dict, body: bytes
    ) -> Reply:
        """Serve one request on an executor thread (may block on the
        batcher); exceptions become typed ``ERROR`` replies upstream."""
        if msg_type == MessageType.REGISTER:
            return self._handle_register(header, body)
        if msg_type == MessageType.APPLY:
            return self._handle_apply(header, body)
        if msg_type == MessageType.APPLY_BATCH:
            return self._handle_apply_batch(header, body)
        if msg_type == MessageType.UPDATE:
            return self._handle_update(header, body)
        if msg_type == MessageType.STATS:
            return self._handle_stats(header)
        if msg_type == MessageType.SHUTDOWN:
            return Reply(
                MessageType.OK, {"stopping": True},
                close=True, then=self.stop,
            )
        raise ServiceError(
            ErrorCode.BAD_REQUEST,
            f"{MessageType(msg_type).name} is not a request type",
        )

    # -- request handlers ------------------------------------------------------

    def _handle_register(self, header: Dict, body: bytes) -> Reply:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs a tensor_id string"
            )
        kind = header.get("kind", "dense")
        if kind == "symk":
            return self._register_symk(tensor_id, header, body)
        if kind != "dense":
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"kind must be 'dense' or 'symk', got {kind!r}",
            )
        try:
            n = int(header["n"])
            q = int(header["q"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs integer n and q"
            ) from None
        try:
            order = int(header.get("order", 3))
        except (TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "order must be an integer"
            ) from None
        if order not in (3, 4):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"serving supports tensor orders 3 and 4, got {order}",
            )
        if order not in self.accepted_orders:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"this server accepts orders"
                f" {', '.join(map(str, self.accepted_orders))};"
                f" got {order}",
            )
        backend = header.get("backend", "simulated")
        if backend != "auto" and backend not in TRANSPORTS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown backend {backend!r}; available: auto,"
                f" {', '.join(sorted(TRANSPORTS))}",
            )
        variant = header.get("variant", "point-to-point")
        if variant != "auto" and variant not in VARIANTS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown variant {variant!r}; available: auto,"
                f" {', '.join(VARIANTS)}",
            )
        strategy = header.get("strategy", "auto")
        if order == 4:
            # The planner's cost model prices the order-3 spherical
            # family only; auto fields have no order-4 meaning yet.
            if backend == "auto" or variant == "auto":
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    "order-4 registration does not support auto"
                    " backend/variant (the planner prices order 3 only)",
                )
            if variant != "point-to-point":
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"order-4 serving supports only the point-to-point"
                    f" variant, got {variant!r}",
                )
        planned = backend == "auto" or variant == "auto"
        if planned:
            backend, variant, strategy = self._plan_registration(
                n, q, backend, variant, strategy
            )
        data = decode_array(header, body, expected_ndim=1)
        if order == 4:
            if q < 2:
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"order-4 registration needs SQS parameter q=k >= 2,"
                    f" got {q}",
                )
            if data.shape[0] != nd_packed_size(n, 4):
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"packed order-4 body has {data.shape[0]} entries,"
                    f" n={n} needs {nd_packed_size(n, 4)}",
                )
            tensor = NdPackedSymmetricTensor(n, 4, data)
            points = 2**q
            P = points * (points - 1) * (points - 2) // 24
            key = SessionKey(
                tensor_id=tensor_id, q=q, P=P, backend=backend, order=4
            )
        else:
            if data.shape[0] != packed_size(n):
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"packed body has {data.shape[0]} entries, n={n} needs"
                    f" {packed_size(n)}",
                )
            tensor = PackedSymmetricTensor(n, data)
            key = SessionKey(
                tensor_id=tensor_id, q=q, P=q * (q * q + 1), backend=backend
            )
        # Build outside all locks: block extraction + plan compilation
        # is the expensive part registration exists to amortize.
        session = EngineSession(
            key,
            tensor,
            strategy=strategy,
            faults=self.faults,
            fusion=self.fusion,
            variant=variant,
        )
        with self._routes_lock:
            self._routes[tensor_id] = key
        self.pool.put(key, session)
        self.metrics.incr("registrations")
        return Reply(
            MessageType.OK,
            {
                "tensor_id": tensor_id,
                "n": n,
                "q": q,
                "P": key.P,
                "order": order,
                "backend": backend,
                "variant": session.variant.value,
                "planned": planned,
                "plan_strategy": session.plan.strategy,
                "session_bytes": session.nbytes(),
            },
        )

    def _register_symk(
        self, tensor_id: str, header: Dict, body: bytes
    ) -> Reply:
        """``kind="symk"``: register a low-rank symmetric Kruskal
        tensor from its factors on the wire.

        The body is the flat float64 concatenation ``[λ (r words), V
        row-major (n·r words)]``. ``order`` is the tensor order ``m``
        (any 2..6 — no Steiner structure is involved, so
        ``accepted_orders`` does not apply) and ``P`` defaults to the
        dense family's ``q(q²+1)`` so the two representations price
        side by side.
        """
        from repro.tensor.symk import MAX_DENSE_ORDER, SymKTensor

        try:
            n = int(header["n"])
            rank = int(header["rank"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "symk register needs integer n and rank",
            ) from None
        try:
            order = int(header.get("order", 3))
            q = int(header.get("q", 2))
            P = int(header.get("P", q * (q * q + 1)))
        except (TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "symk order, q, and P must be integers",
            ) from None
        if not 2 <= order <= MAX_DENSE_ORDER:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"symk serving supports orders 2..{MAX_DENSE_ORDER},"
                f" got {order}",
            )
        if n < 1 or rank < 1 or P < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"need n >= 1, rank >= 1, P >= 1; got n={n}, rank={rank},"
                f" P={P}",
            )
        backend = header.get("backend", "simulated")
        if backend != "auto" and backend not in TRANSPORTS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown backend {backend!r}; available: auto,"
                f" {', '.join(sorted(TRANSPORTS))}",
            )
        variant = header.get("variant", "point-to-point")
        if variant != "auto" and variant not in VARIANTS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown variant {variant!r}; available: auto,"
                f" {', '.join(VARIANTS)}",
            )
        strategy = header.get("strategy", "auto")
        planned = backend == "auto" or variant == "auto"
        if planned:
            calibration = Calibration.load_or_default(self.calibration_path)
            config = auto_symk_config(
                n,
                rank,
                P,
                backends=(
                    tuple(sorted(TRANSPORTS))
                    if backend == "auto"
                    else (backend,)
                ),
                calibration=calibration,
                fusion_options=(self.fusion,),
            )
            if backend == "auto":
                backend = config["backend"]
            if variant == "auto":
                variant = config["variant"]
        data = decode_array(header, body, expected_ndim=1)
        if data.shape[0] != rank + n * rank:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"symk body has {data.shape[0]} entries; rank={rank},"
                f" n={n} needs {rank + n * rank} (lambda then V"
                f" row-major)",
            )
        tensor = SymKTensor(data[:rank], data[rank:].reshape(n, rank), order)
        key = SessionKey(
            tensor_id=tensor_id, q=q, P=P, backend=backend,
            order=order, kind="symk",
        )
        session = EngineSession(
            key,
            tensor,
            strategy=strategy,
            faults=self.faults,
            fusion=self.fusion,
            variant=variant,
        )
        with self._routes_lock:
            self._routes[tensor_id] = key
        self.pool.put(key, session)
        self.metrics.incr("registrations")
        return Reply(
            MessageType.OK,
            {
                "tensor_id": tensor_id,
                "kind": "symk",
                "n": n,
                "rank": rank,
                "q": q,
                "P": P,
                "order": order,
                "backend": backend,
                "variant": session.variant.value,
                "planned": planned,
                "plan_strategy": session.plan.strategy,
                "update_epoch": session.update_epoch,
                "session_bytes": session.nbytes(),
            },
        )

    def _plan_registration(
        self, n: int, q: int, backend: str, variant: str, strategy: str
    ) -> Tuple[str, str, str]:
        """Resolve ``auto`` registration fields through the planner.

        Deterministic given the calibration file (or its absence): the
        planner prices candidates under the loaded constants and ties
        break in enumeration order, so every shard behind the gateway
        resolves an identical replayed registration identically. Only
        the fields the caller left on ``auto`` are overwritten, and
        fusion candidates are pinned to this server's own ``fusion``
        setting (sessions inherit it regardless).
        """
        calibration = Calibration.load_or_default(self.calibration_path)
        config = auto_session_config(
            n,
            q,
            backends=(
                tuple(sorted(TRANSPORTS)) if backend == "auto" else (backend,)
            ),
            calibration=calibration,
            fusion_options=(self.fusion,),
        )
        if backend == "auto":
            backend = config["backend"]
        if variant == "auto":
            variant = config["variant"]
        if strategy == "auto":
            strategy = config["strategy"]
        return backend, variant, strategy

    def _resolve(self, header: Dict) -> Tuple[SessionKey, EngineSession]:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "request needs a tensor_id string"
            )
        with self._routes_lock:
            key = self._routes.get(tensor_id)
        session = self.pool.get(key) if key is not None else None
        if session is None or session.closed:
            raise ServiceError(
                ErrorCode.UNKNOWN_TENSOR,
                f"tensor {tensor_id!r} is not registered (or was"
                " evicted); REGISTER it first",
            )
        return key, session

    @staticmethod
    def _mode(header: Dict) -> str:
        mode = header.get("mode", "plan")
        if mode not in ("plan", "parallel"):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"mode must be 'plan' or 'parallel', got {mode!r}",
            )
        return mode

    @staticmethod
    def _trace_id(header: Dict) -> str:
        """Accept the client's trace id or mint one (every request is
        traceable; ids round-trip in the ``RESULT`` header)."""
        trace_id = header.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            return trace_id
        return new_trace_id()

    def _handle_update(self, header: Dict, body: bytes) -> Reply:
        """``UPDATE``: fold one streamed rank-1 term into a resident
        low-rank tensor under the session lock.

        The body is the flat float64 concatenation ``[λ_new, v_new (n
        words)]``. The reply echoes the session's new monotone
        ``update_epoch``; every subsequent apply reply carries the
        epoch its result reflects, so a client that saw epoch ``e``
        acknowledged can fence reads with ``min_epoch=e``.
        """
        start = time.monotonic()
        key, session = self._resolve(header)
        if key.kind != "symk":
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"tensor {key.tensor_id!r} is {key.kind!r}; UPDATE"
                " applies to kind='symk' registrations only",
            )
        data = decode_array(header, body, expected_ndim=1)
        if data.shape[0] != 1 + session.n:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"update body has {data.shape[0]} entries, needs"
                f" {1 + session.n} (lambda_new then v_new)",
            )
        with session.exec_lock:
            epoch = session.update_rank1(float(data[0]), data[1:])
            rank = session.tensor.r
        session.metrics.latency.record(time.monotonic() - start)
        self.metrics.incr("updates")
        self.metrics.incr("accepted")
        return Reply(
            MessageType.OK,
            {
                "tensor_id": key.tensor_id,
                "update_epoch": epoch,
                "rank": rank,
                "n": session.n,
            },
        )

    @staticmethod
    def _min_epoch(header: Dict) -> Optional[int]:
        min_epoch = header.get("min_epoch")
        if min_epoch is None:
            return None
        if not isinstance(min_epoch, int) or min_epoch < 0:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"min_epoch must be a non-negative integer, got"
                f" {min_epoch!r}",
            )
        return min_epoch

    @staticmethod
    def _check_epoch_fence(
        session: EngineSession, min_epoch: Optional[int]
    ) -> None:
        """Caller holds ``exec_lock``: reject reads behind the fence."""
        if min_epoch is not None and session.update_epoch < min_epoch:
            raise ServiceError(
                ErrorCode.STALE_READ,
                f"session is at update_epoch {session.update_epoch},"
                f" client fenced at {min_epoch}",
            )

    def _apply_symk(
        self, key: SessionKey, session: EngineSession,
        mode: str, x, min_epoch: Optional[int],
    ):
        """Low-rank applies bypass the batcher and serve directly
        under the session lock: the epoch a result reflects must be
        captured atomically with the computation (an UPDATE landing
        between a batched execution and its reply would otherwise
        mis-stamp the result), which is what makes interleaved
        UPDATE/APPLY streams linearizable by epoch prefix."""
        with session.exec_lock:
            self._check_epoch_fence(session, min_epoch)
            if x.ndim == 1:
                y = session.apply(x, mode=mode)
            else:
                y = session.apply_batch(x, mode=mode)
            return y, session.update_epoch

    def _handle_apply(self, header: Dict, body: bytes) -> Reply:
        start = time.monotonic()
        trace_id = self._trace_id(header)
        key, session = self._resolve(header)
        mode = self._mode(header)
        deadline_ms = header.get("deadline_ms")
        min_epoch = self._min_epoch(header)
        x = decode_array(header, body, expected_ndim=1)
        if x.shape[0] != session.n:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"vector has {x.shape[0]} entries, tensor has n={session.n}",
            )
        tracer = get_tracer()
        epoch: Optional[int] = None
        with trace_context(trace_id):
            if tracer.enabled:
                span_cm = tracer.span(
                    "request:apply",
                    kind="request",
                    attrs={"tensor_id": key.tensor_id, "mode": mode},
                )
            else:
                span_cm = None
            with span_cm if span_cm is not None else _NULL_SPAN:
                if key.kind == "symk":
                    y, epoch = self._apply_symk(
                        key, session, mode, x, min_epoch
                    )
                    session.metrics.incr("requests")
                    session.metrics.latency.record(time.monotonic() - start)
                    self.metrics.incr("accepted")
                    result_header, result_body = encode_array(y)
                    result_header["trace_id"] = trace_id
                    result_header["update_epoch"] = epoch
                    return Reply(
                        MessageType.RESULT, result_header, result_body
                    )
                future = self.batcher.submit(
                    key, mode, session, x,
                    deadline_ms=deadline_ms,
                    trace_id=trace_id,
                )
                timeout = (
                    deadline_ms / 1e3 + _DEADLINE_GRACE_S
                    if deadline_ms is not None
                    else None
                )
                try:
                    y = future.result(timeout=timeout)
                except FutureTimeout:
                    raise ServiceError(
                        ErrorCode.DEADLINE_EXCEEDED,
                        f"no result within deadline_ms={deadline_ms}",
                    ) from None
        session.metrics.incr("requests")
        session.metrics.latency.record(time.monotonic() - start)
        self.metrics.incr("accepted")
        result_header, result_body = encode_array(y)
        result_header["trace_id"] = trace_id
        return Reply(MessageType.RESULT, result_header, result_body)

    def _handle_apply_batch(self, header: Dict, body: bytes) -> Reply:
        start = time.monotonic()
        trace_id = self._trace_id(header)
        key, session = self._resolve(header)
        mode = self._mode(header)
        min_epoch = self._min_epoch(header)
        X = decode_array(header, body, expected_ndim=2)
        if X.shape[0] != session.n:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"batch rows ({X.shape[0]}) != tensor n ({session.n})",
            )
        tracer = get_tracer()
        epoch: Optional[int] = None
        with trace_context(trace_id):
            if tracer.enabled:
                span_cm = tracer.span(
                    "request:apply_batch",
                    kind="request",
                    attrs={
                        "tensor_id": key.tensor_id,
                        "mode": mode,
                        "size": X.shape[1],
                    },
                )
            else:
                span_cm = None
            with span_cm if span_cm is not None else _NULL_SPAN:
                if key.kind == "symk":
                    Y, epoch = self._apply_symk(
                        key, session, mode, X, min_epoch
                    )
                else:
                    with session.exec_lock:
                        Y = session.apply_batch(X, mode=mode)
        session.metrics.incr("batch_requests")
        session.metrics.incr("requests", X.shape[1])
        session.metrics.batch_sizes.record(X.shape[1])
        session.metrics.latency.record(time.monotonic() - start)
        self.metrics.incr("accepted", X.shape[1])
        result_header, result_body = encode_array(Y)
        result_header["trace_id"] = trace_id
        if epoch is not None:
            result_header["update_epoch"] = epoch
        return Reply(MessageType.RESULT, result_header, result_body)

    def _handle_stats(self, header: Optional[Dict] = None) -> Reply:
        """``STATS`` with optional exporter formats: the default reply
        is the JSON stats payload; ``{"format": "prometheus"}`` returns
        the registry in Prometheus text format and ``{"format":
        "spans"}`` the tracer's buffer as JSON-lines (optionally
        filtered by ``trace_id``) — both as UTF-8 frame bodies."""
        fmt = (header or {}).get("format", "json")
        if fmt == "json":
            return Reply(MessageType.OK, self.stats())
        if fmt == "prometheus":
            text = prometheus_text(self.registry)
            return Reply(
                MessageType.OK,
                {"format": "prometheus"}, text.encode("utf-8"),
            )
        if fmt == "spans":
            trace_id = (header or {}).get("trace_id")
            spans = get_tracer().spans(trace_id=trace_id)
            text = spans_to_jsonl(spans)
            return Reply(
                MessageType.OK,
                {"format": "spans", "count": len(spans)},
                text.encode("utf-8"),
            )
        raise ServiceError(
            ErrorCode.BAD_REQUEST,
            f"stats format must be json, prometheus, or spans;"
            f" got {fmt!r}",
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict:
        """The ``STATS`` payload (also usable in-process)."""
        sessions = {}
        # Snapshot without touching LRU recency: iterate a key copy and
        # read through the pool's cache get (which does refresh) — the
        # refresh order matches iteration order, so recency is restored.
        for key in self.pool.keys():
            session = self.pool.get(key)
            if session is not None and not session.closed:
                sessions[key.label()] = session.snapshot()
        info = self.pool.info()
        return {
            "server": self.metrics.snapshot(
                queue_depth=self.batcher.queue_depths()
            ),
            "sessions": sessions,
            "pool": {
                "sessions": info.currsize,
                "max_sessions": info.maxsize,
                "bytes": info.nbytes,
                "byte_budget": info.byte_budget,
                "evictions": info.evictions,
            },
            "connections": self.connection_count(),
            "config": {
                "max_batch": self.batcher.max_batch,
                "max_wait_ms": self.batcher.max_wait_ms,
                "admission_capacity": self.batcher.admission_capacity,
                "executor_workers": self.executor_workers,
                "max_inflight": self.max_inflight,
                "faults": self.faults is not None and self.faults.enabled,
                "fusion": self.fusion,
                "accepted_orders": list(self.accepted_orders),
                "tracing": get_tracer().enabled,
            },
            "recent_traces": get_tracer().recent_trace_ids(),
        }
