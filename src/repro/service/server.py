"""Threaded TCP server fronting warm STTSV engine sessions.

Request path for ``APPLY``::

    client ──frame──▶ handler thread ──submit──▶ DynamicBatcher lane
                                                      │ (coalesce)
    client ◀─frame── handler thread ◀─future── EngineSession.apply_batch

Each accepted connection gets a handler thread that reads frames in a
loop and dispatches on :class:`~repro.service.protocol.MessageType`.
Handlers never execute engine work directly for ``APPLY`` — they
enqueue into the :class:`~repro.service.batcher.DynamicBatcher` and
block on the returned future, which is what lets concurrent requests
from independent connections coalesce into one batched execution.

Failure discipline: every error a request can cause becomes a typed
``ERROR`` reply (:class:`~repro.service.protocol.ErrorCode`) on that
request's connection; the server never prints a traceback and never
dies because of one request. Backpressure is immediate — a full
admission queue is an ``OVERLOADED`` reply, not a stalled socket — so
a saturated server stays observable (``STATS`` still answers) and
recoverable.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.machine.transport import TRANSPORTS, FaultPolicy
from repro.service.batcher import (
    DEFAULT_ADMISSION_CAPACITY,
    DEFAULT_MAX_BATCH,
    DynamicBatcher,
)
from repro.service.metrics import ServerMetrics
from repro.service.protocol import (
    ErrorCode,
    MessageType,
    ProtocolError,
    ServiceError,
    decode_array,
    encode_array,
    error_header,
    read_frame,
    write_frame,
)
from repro.service.sessions import (
    DEFAULT_MAX_SESSIONS,
    EngineSession,
    SessionKey,
    SessionPool,
)
from repro.tensor.packed import PackedSymmetricTensor, packed_size

#: Accept-loop poll interval — bounds shutdown latency.
_ACCEPT_TIMEOUT_S = 0.2

#: Grace added to a request deadline when waiting on its future: the
#: batcher enforces expiry at dequeue; this only guards against a
#: wedged execution.
_DEADLINE_GRACE_S = 5.0


class STTSVServer:
    """Serve STTSV applies over TCP with dynamic batching.

    ``port=0`` (the default) binds an ephemeral port; read
    :attr:`address` after :meth:`start`. The server object doubles as a
    context manager::

        with STTSVServer() as server:
            host, port = server.address
            ...

    Tests drive deterministic coalescing/overload through
    :attr:`batcher` (``hold()`` / ``release()``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        session_byte_budget: Optional[int] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = 0.0,
        admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
        faults: Optional[FaultPolicy] = None,
    ):
        self._host = host
        self._port = port
        self.faults = faults
        self.metrics = ServerMetrics()
        self.pool = SessionPool(
            max_sessions=max_sessions,
            byte_budget=session_byte_budget,
            on_evict=self._on_session_evicted,
        )
        self.batcher = DynamicBatcher(
            max_wait_ms=max_wait_ms,
            max_batch=max_batch,
            admission_capacity=admission_capacity,
            on_batch=self._on_batch_executed,
        )
        #: ``tensor_id -> SessionKey`` routing table.
        self._routes: Dict[str, SessionKey] = {}
        self._routes_lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._stop_event = threading.Event()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spawn the accept loop; returns the address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        sock.settimeout(_ACCEPT_TIMEOUT_S)
        self._sock = sock
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sttsv-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise ServiceError(ErrorCode.INTERNAL, "server not started")
        host, port = self._sock.getsockname()[:2]
        return host, port

    def stop(self) -> None:
        """Drain and shut down (idempotent): no new connections, pending
        requests failed ``SHUTTING_DOWN``, all sessions closed."""
        if not self._running:
            return
        self._running = False
        self._stop_event.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self.batcher.close()
        with self._routes_lock:
            self._routes.clear()
        self.pool.clear()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (``SHUTDOWN`` request or
        :meth:`stop`); returns False on timeout."""
        return self._stop_event.wait(timeout)

    def __enter__(self) -> "STTSVServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- callbacks -------------------------------------------------------------

    def _on_session_evicted(self, key: SessionKey, session: EngineSession):
        """Pool eviction: fail that session's queued work and drop its
        route before the pool closes the machine."""
        self.batcher.close_lanes(key)
        with self._routes_lock:
            if self._routes.get(key.tensor_id) == key:
                del self._routes[key.tensor_id]

    def _on_batch_executed(self, key: SessionKey, mode: str, size: int):
        session = self.pool.get(key)
        if session is not None:
            session.metrics.batch_sizes.record(size)

    # -- accept / handle -------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.metrics.incr("connections_opened")
            threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="sttsv-conn",
                daemon=True,
            ).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while self._running:
                try:
                    msg_type, header, body = read_frame(conn)
                except ConnectionError:
                    return  # client went away cleanly
                except ProtocolError as error:
                    # Framing is broken: reply once (best effort) and
                    # drop the connection — we can no longer find the
                    # next frame boundary.
                    self.metrics.incr("bad_requests")
                    self._try_reply_error(
                        conn, ErrorCode.BAD_REQUEST, str(error)
                    )
                    return
                except OSError:
                    return
                if not self._dispatch(conn, msg_type, header, body):
                    return

    def _dispatch(self, conn, msg_type, header, body) -> bool:
        """Handle one request; returns False to close the connection."""
        try:
            if msg_type == MessageType.REGISTER:
                self._handle_register(conn, header, body)
            elif msg_type == MessageType.APPLY:
                self._handle_apply(conn, header, body)
            elif msg_type == MessageType.APPLY_BATCH:
                self._handle_apply_batch(conn, header, body)
            elif msg_type == MessageType.STATS:
                self._handle_stats(conn)
            elif msg_type == MessageType.SHUTDOWN:
                write_frame(conn, MessageType.OK, {"stopping": True})
                threading.Thread(target=self.stop, daemon=True).start()
                return False
            else:
                self.metrics.incr("bad_requests")
                self._try_reply_error(
                    conn,
                    ErrorCode.BAD_REQUEST,
                    f"{MessageType(msg_type).name} is not a request type",
                )
        except ServiceError as error:
            self._count_error(error.code)
            self._try_reply_error(conn, error.code, error.detail)
        except ReproError as error:
            self.metrics.incr("bad_requests")
            self._try_reply_error(conn, ErrorCode.BAD_REQUEST, str(error))
        except (OSError, ConnectionError):
            return False
        except Exception as error:  # noqa: BLE001 — one request never
            # kills the server, and tracebacks never hit the log
            self.metrics.incr("internal_errors")
            self._try_reply_error(
                conn,
                ErrorCode.INTERNAL,
                f"{type(error).__name__}: {error}",
            )
        return True

    def _count_error(self, code: ErrorCode) -> None:
        if code == ErrorCode.OVERLOADED:
            self.metrics.incr("rejected_overload")
        elif code == ErrorCode.DEADLINE_EXCEEDED:
            self.metrics.incr("deadline_exceeded")
        else:
            self.metrics.incr("bad_requests")

    @staticmethod
    def _try_reply_error(conn, code: ErrorCode, message: str) -> None:
        try:
            write_frame(
                conn, MessageType.ERROR, error_header(code, message)
            )
        except OSError:
            pass  # client is gone; nothing to tell

    # -- request handlers ------------------------------------------------------

    def _handle_register(self, conn, header: Dict, body: bytes) -> None:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs a tensor_id string"
            )
        try:
            n = int(header["n"])
            q = int(header["q"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs integer n and q"
            ) from None
        backend = header.get("backend", "simulated")
        if backend not in TRANSPORTS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown backend {backend!r}; available:"
                f" {', '.join(sorted(TRANSPORTS))}",
            )
        strategy = header.get("strategy", "auto")
        data = decode_array(header, body, expected_ndim=1)
        if data.shape[0] != packed_size(n):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"packed body has {data.shape[0]} entries, n={n} needs"
                f" {packed_size(n)}",
            )
        tensor = PackedSymmetricTensor(n, data)
        key = SessionKey(
            tensor_id=tensor_id, q=q, P=q * (q * q + 1), backend=backend
        )
        # Build outside all locks: block extraction + plan compilation
        # is the expensive part registration exists to amortize.
        session = EngineSession(
            key, tensor, strategy=strategy, faults=self.faults
        )
        with self._routes_lock:
            self._routes[tensor_id] = key
        self.pool.put(key, session)
        self.metrics.incr("registrations")
        write_frame(
            conn,
            MessageType.OK,
            {
                "tensor_id": tensor_id,
                "n": n,
                "q": q,
                "P": key.P,
                "backend": backend,
                "plan_strategy": session.plan.strategy,
                "session_bytes": session.nbytes(),
            },
        )

    def _resolve(self, header: Dict) -> Tuple[SessionKey, EngineSession]:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "request needs a tensor_id string"
            )
        with self._routes_lock:
            key = self._routes.get(tensor_id)
        session = self.pool.get(key) if key is not None else None
        if session is None or session.closed:
            raise ServiceError(
                ErrorCode.UNKNOWN_TENSOR,
                f"tensor {tensor_id!r} is not registered (or was"
                " evicted); REGISTER it first",
            )
        return key, session

    @staticmethod
    def _mode(header: Dict) -> str:
        mode = header.get("mode", "plan")
        if mode not in ("plan", "parallel"):
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"mode must be 'plan' or 'parallel', got {mode!r}",
            )
        return mode

    def _handle_apply(self, conn, header: Dict, body: bytes) -> None:
        start = time.monotonic()
        key, session = self._resolve(header)
        mode = self._mode(header)
        deadline_ms = header.get("deadline_ms")
        x = decode_array(header, body, expected_ndim=1)
        if x.shape[0] != session.n:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"vector has {x.shape[0]} entries, tensor has n={session.n}",
            )
        future = self.batcher.submit(
            key, mode, session, x, deadline_ms=deadline_ms
        )
        timeout = (
            deadline_ms / 1e3 + _DEADLINE_GRACE_S
            if deadline_ms is not None
            else None
        )
        try:
            y = future.result(timeout=timeout)
        except FutureTimeout:
            raise ServiceError(
                ErrorCode.DEADLINE_EXCEEDED,
                f"no result within deadline_ms={deadline_ms}",
            ) from None
        session.metrics.incr("requests")
        session.metrics.latency.record(time.monotonic() - start)
        self.metrics.incr("accepted")
        result_header, result_body = encode_array(y)
        write_frame(conn, MessageType.RESULT, result_header, result_body)

    def _handle_apply_batch(self, conn, header: Dict, body: bytes) -> None:
        start = time.monotonic()
        key, session = self._resolve(header)
        mode = self._mode(header)
        X = decode_array(header, body, expected_ndim=2)
        if X.shape[0] != session.n:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"batch rows ({X.shape[0]}) != tensor n ({session.n})",
            )
        with session.exec_lock:
            Y = session.apply_batch(X, mode=mode)
        session.metrics.incr("batch_requests")
        session.metrics.incr("requests", X.shape[1])
        session.metrics.batch_sizes.record(X.shape[1])
        session.metrics.latency.record(time.monotonic() - start)
        self.metrics.incr("accepted", X.shape[1])
        result_header, result_body = encode_array(Y)
        write_frame(conn, MessageType.RESULT, result_header, result_body)

    def _handle_stats(self, conn) -> None:
        write_frame(conn, MessageType.OK, self.stats())

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict:
        """The ``STATS`` payload (also usable in-process)."""
        sessions = {}
        # Snapshot without touching LRU recency: iterate a key copy and
        # read through the pool's cache get (which does refresh) — the
        # refresh order matches iteration order, so recency is restored.
        for key in self.pool.keys():
            session = self.pool.get(key)
            if session is not None and not session.closed:
                sessions[key.label()] = session.snapshot()
        info = self.pool.info()
        return {
            "server": self.metrics.snapshot(
                queue_depth=self.batcher.queue_depths()
            ),
            "sessions": sessions,
            "pool": {
                "sessions": info.currsize,
                "max_sessions": info.maxsize,
                "bytes": info.nbytes,
                "byte_budget": info.byte_budget,
                "evictions": info.evictions,
            },
            "config": {
                "max_batch": self.batcher.max_batch,
                "max_wait_ms": self.batcher.max_wait_ms,
                "admission_capacity": self.batcher.admission_capacity,
                "faults": self.faults is not None and self.faults.enabled,
            },
        }
