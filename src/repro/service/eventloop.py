"""Non-blocking event-loop connection layer for frame servers.

One selector thread owns every socket — the listener and all accepted
connections — and never blocks on any of them:

* readable connections feed a per-connection incremental
  :class:`~repro.service.protocol.FrameReader`; complete request
  frames queue on the connection;
* each connection's requests dispatch **serially** (one in flight per
  connection, preserving the request/reply ordering the blocking
  client relies on) to a bounded ``ThreadPoolExecutor``, where the
  subclass's :meth:`FrameLoopServer.handle_request` runs — blocking on
  batcher futures or backend round-trips without ever stalling the
  loop;
* the worker hands its reply bytes back to the loop through a wake
  pipe, and the loop writes them out incrementally as the socket
  accepts them.

Saturation is explicit: when more requests are mid-execution than
``max_inflight``, the loop answers ``OVERLOADED`` directly — a typed
reply in microseconds instead of an unbounded dispatch queue — so a
saturated server stays observable and recoverable, exactly the
discipline the batcher applies one layer down.

:class:`STTSVServer` (engine work) and :class:`STTSVGateway`
(shard routing) are both fronts over this class; the only part they
implement is ``handle_request``.
"""

from __future__ import annotations

import selectors
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Deque, Dict, NamedTuple, Optional, Tuple

from repro.errors import ReproError
from repro.service.protocol import (
    ErrorCode,
    FrameReader,
    MessageType,
    ProtocolError,
    ServiceError,
    error_header,
    pack_frame,
)

#: Default worker threads executing requests off-loop.
DEFAULT_EXECUTOR_WORKERS = 32

#: Loop poll interval — bounds shutdown latency when nothing is ready.
_SELECT_TIMEOUT_S = 0.5

#: Bytes pulled per readable event.
_RECV_CHUNK = 1 << 16


class Reply(NamedTuple):
    """What a request handler returns: one frame, plus connection fate.

    ``close`` flushes the reply and then drops the connection;
    ``then`` runs (on its own thread) after the reply has flushed —
    the hook ``SHUTDOWN`` uses to stop the server *after* its OK
    reaches the client.
    """

    msg_type: MessageType
    header: Dict
    body: bytes = b""
    close: bool = False
    then: Optional[Callable[[], None]] = None


class _Connection:
    """Loop-owned state of one accepted socket."""

    __slots__ = (
        "sock", "reader", "requests", "outbox", "offset",
        "busy", "close_after_flush", "then", "events",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.reader = FrameReader()
        #: Complete frames parsed but not yet dispatched.
        self.requests: Deque[Tuple[MessageType, Dict, bytes]] = deque()
        #: Reply byte buffers queued for writing.
        self.outbox: Deque[memoryview] = deque()
        #: Progress into ``outbox[0]``.
        self.offset = 0
        #: A request from this connection is executing off-loop.
        self.busy = False
        self.close_after_flush = False
        self.then: Optional[Callable[[], None]] = None
        #: Selector interest currently registered.
        self.events = selectors.EVENT_READ


class FrameLoopServer:
    """Selector-driven TCP server speaking the length-prefixed protocol.

    Subclasses implement :meth:`handle_request` (runs on an executor
    thread; may block) and the ``note_*`` / ``on_*`` hooks for their
    own metrics and lifecycle. The public surface — ``start`` /
    ``stop`` / ``wait`` / ``address`` / context manager — matches the
    old thread-per-connection server exactly.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
        max_inflight: Optional[int] = None,
        name: str = "frameloop",
    ):
        if executor_workers < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"executor_workers must be >= 1, got {executor_workers}",
            )
        self._host = host
        self._port = port
        self._name = name
        self.executor_workers = executor_workers
        #: Requests allowed mid-execution before the loop answers
        #: OVERLOADED itself (default: 4x the worker count, so a burst
        #: can queue briefly without the executor backlog growing
        #: unboundedly).
        self.max_inflight = (
            max_inflight if max_inflight is not None else executor_workers * 4
        )
        self._sock: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._connections: Dict[socket.socket, _Connection] = {}
        self._callbacks: Deque[Callable[[], None]] = deque()
        self._callbacks_lock = threading.Lock()
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._inflight = 0
        self._running = False
        self._stop_lock = threading.Lock()
        self._stop_event = threading.Event()

    # -- subclass hooks --------------------------------------------------------

    def handle_request(
        self, msg_type: MessageType, header: Dict, body: bytes
    ) -> Reply:
        """Serve one request; runs on an executor thread and may block.

        Raise :class:`ServiceError` (or any exception — see
        :meth:`classify_error`) to produce a typed ``ERROR`` reply.
        """
        raise NotImplementedError

    def classify_error(self, error: Exception) -> Tuple[ErrorCode, str]:
        """Map a handler exception to a typed error reply."""
        if isinstance(error, ServiceError):
            return error.code, error.detail
        if isinstance(error, ReproError):
            return ErrorCode.BAD_REQUEST, str(error)
        return ErrorCode.INTERNAL, f"{type(error).__name__}: {error}"

    def note_connection(self) -> None:
        """A connection was accepted."""

    def note_bad_frame(self) -> None:
        """A connection sent an unparseable frame."""

    def note_error(self, code: ErrorCode) -> None:
        """A request produced a typed ``ERROR`` reply."""

    def on_start(self) -> None:
        """Runs inside :meth:`start`, after the socket is listening."""

    def on_stop(self) -> None:
        """Runs inside :meth:`stop`, after the loop has exited."""

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spawn the event loop; returns the address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        sock.setblocking(False)
        self._sock = sock
        self._selector = selectors.DefaultSelector()
        self._selector.register(sock, selectors.EVENT_READ, None)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers,
            thread_name_prefix=f"{self._name}-worker",
        )
        self._running = True
        self._stop_event.clear()
        self.on_start()
        self._loop_thread = threading.Thread(
            target=self._loop, name=f"{self._name}-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._sock is None:
            raise ServiceError(ErrorCode.INTERNAL, "server not started")
        host, port = self._sock.getsockname()[:2]
        return host, port

    def stop(self) -> None:
        """Shut down (idempotent): the loop exits, every connection and
        the listener close, queued work is abandoned."""
        with self._stop_lock:
            if not self._running:
                return
            self._running = False
        self._wake()
        if (
            self._loop_thread is not None
            and self._loop_thread is not threading.current_thread()
        ):
            self._loop_thread.join(timeout=5.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.on_stop()
        self._stop_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops; returns False on timeout."""
        return self._stop_event.wait(timeout)

    def __enter__(self) -> "FrameLoopServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- loop ------------------------------------------------------------------

    def _loop(self) -> None:
        while self._running:
            events = self._selector.select(_SELECT_TIMEOUT_S)
            for key, mask in events:
                if key.fileobj is self._sock:
                    self._accept()
                elif key.fileobj is self._wake_r:
                    self._drain_wake()
                else:
                    conn = key.data
                    if mask & selectors.EVENT_READ:
                        self._readable(conn)
                    if (
                        mask & selectors.EVENT_WRITE
                        and conn.sock.fileno() != -1
                    ):
                        self._flush(conn)
            self._run_callbacks()
        self._teardown()

    def _teardown(self) -> None:
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        for sock in (self._sock, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._selector is not None:
            self._selector.close()

    def _wake(self) -> None:
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"\0")
            except OSError:
                pass

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _call_soon(self, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` on the loop thread (thread-safe)."""
        with self._callbacks_lock:
            self._callbacks.append(callback)
        self._wake()

    def _run_callbacks(self) -> None:
        while True:
            with self._callbacks_lock:
                if not self._callbacks:
                    return
                callback = self._callbacks.popleft()
            callback()

    # -- accept / read ---------------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._sock.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock)
            self._connections[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self.note_connection()

    def _readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._close_connection(conn)
            return
        if not data:
            self._close_connection(conn)
            return
        conn.reader.feed(data)
        try:
            while True:
                frame = conn.reader.next_frame()
                if frame is None:
                    break
                conn.requests.append(frame)
        except ProtocolError as error:
            # Framing is broken: there is no recoverable next-frame
            # boundary. Reply once (typed), drop anything queued
            # behind the poison, and close after the reply flushes.
            self.note_bad_frame()
            conn.requests.clear()
            self._enqueue_reply(
                conn,
                pack_frame(
                    MessageType.ERROR,
                    error_header(ErrorCode.BAD_REQUEST, str(error)),
                ),
                close=True,
            )
            return
        self._pump(conn)

    # -- dispatch --------------------------------------------------------------

    def _pump(self, conn: _Connection) -> None:
        """Dispatch this connection's next request, if it is idle."""
        while (
            not conn.busy
            and not conn.close_after_flush
            and conn.requests
        ):
            frame = conn.requests.popleft()
            if self._inflight >= self.max_inflight:
                self.note_error(ErrorCode.OVERLOADED)
                self._enqueue_reply(
                    conn,
                    pack_frame(
                        MessageType.ERROR,
                        error_header(
                            ErrorCode.OVERLOADED,
                            f"{self._inflight} requests already executing"
                            f" (max_inflight={self.max_inflight})",
                        ),
                    ),
                )
                continue  # pipelined frames behind it still answered
            conn.busy = True
            self._inflight += 1
            self._executor.submit(self._process, conn, frame)

    def _process(
        self, conn: _Connection, frame: Tuple[MessageType, Dict, bytes]
    ) -> None:
        """Executor thread: run the handler, serialize one reply."""
        msg_type, header, body = frame
        close = False
        then: Optional[Callable[[], None]] = None
        try:
            reply = self.handle_request(msg_type, header, body)
            close, then = reply.close, reply.then
            payload = pack_frame(reply.msg_type, reply.header, reply.body)
        except Exception as error:  # noqa: BLE001 — one request never
            # kills the server; every failure becomes a typed reply
            code, message = self.classify_error(error)
            self.note_error(code)
            payload = pack_frame(
                MessageType.ERROR, error_header(code, message)
            )
        self._call_soon(lambda: self._finish(conn, payload, close, then))

    def _finish(
        self,
        conn: _Connection,
        payload: bytes,
        close: bool,
        then: Optional[Callable[[], None]],
    ) -> None:
        """Loop thread: queue the reply and resume the connection."""
        self._inflight -= 1
        conn.busy = False
        if conn.sock.fileno() == -1:  # peer vanished mid-execution
            if then is not None:
                threading.Thread(target=then, daemon=True).start()
            return
        self._enqueue_reply(conn, payload, close=close, then=then)
        if not close:
            self._pump(conn)

    # -- write -----------------------------------------------------------------

    def _enqueue_reply(
        self,
        conn: _Connection,
        payload: bytes,
        close: bool = False,
        then: Optional[Callable[[], None]] = None,
    ) -> None:
        conn.outbox.append(memoryview(payload))
        if close:
            conn.close_after_flush = True
        if then is not None:
            conn.then = then
        self._flush(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.outbox:
            buffer = conn.outbox[0]
            try:
                sent = conn.sock.send(buffer[conn.offset :])
            except BlockingIOError:
                break
            except OSError:
                self._close_connection(conn)
                return
            conn.offset += sent
            if conn.offset == len(buffer):
                conn.outbox.popleft()
                conn.offset = 0
            elif sent == 0:
                break
        if not conn.outbox and conn.close_after_flush:
            then = conn.then
            conn.then = None
            self._close_connection(conn)
            if then is not None:
                threading.Thread(target=then, daemon=True).start()
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        events = selectors.EVENT_READ
        if conn.close_after_flush:
            events = 0
        if conn.outbox:
            events |= selectors.EVENT_WRITE
        if events == conn.events or conn.sock.fileno() == -1:
            return
        conn.events = events
        try:
            if events:
                self._selector.modify(conn.sock, events, conn)
            else:
                self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass

    def _close_connection(self, conn: _Connection) -> None:
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._connections.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- introspection ---------------------------------------------------------

    def connection_count(self) -> int:
        """Open connections (loop-owned; racy snapshot is fine)."""
        return len(self._connections)

    def inflight(self) -> int:
        """Requests currently executing off-loop."""
        return self._inflight
