"""Dynamic micro-batching of concurrent apply requests.

One *lane* per ``(session, mode)`` stream: a bounded FIFO admission
queue plus a worker thread that executes against the warm engine. The
batching policy is the continuous-batching scheme production inference
servers use:

* the worker blocks until at least one request is queued, then
  **drains** everything waiting (up to ``max_batch``) into a single
  ``apply_batch`` execution — so under concurrency, requests that
  arrive while the previous batch executes coalesce automatically;
* a lone request on an idle lane executes immediately — a serial
  client never pays an artificial wait;
* ``max_wait_ms > 0`` opts into holding the first request up to that
  deadline to grow the batch (higher throughput, bounded added
  latency; the default 0 is the pure drain policy).

Coalescing never changes results: a batch executes through
``EngineSession.apply_batch``, whose ``parallel`` mode and ``plan``
mode with the ``bincount`` strategy are column loops — each column is
bitwise identical to an unbatched request (tested). The ``gemm``
strategy trades that for one multi-column GEMM (last-ulp agreement,
same trade documented for :meth:`SequentialPlan.apply_batch`).

Backpressure is explicit: a full admission queue makes :meth:`submit`
raise :class:`ServiceError` with code ``OVERLOADED`` immediately —
the server turns that into a typed reply instead of stalling the
connection. Per-request deadlines are honored at dequeue: an expired
request fails with ``DEADLINE_EXCEEDED`` without being executed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from contextlib import nullcontext

from repro.obs.tracing import get_tracer, trace_context
from repro.service.protocol import ErrorCode, ServiceError
from repro.service.sessions import EngineSession, SessionKey

#: Default bound on queued-but-unserved requests per lane.
DEFAULT_ADMISSION_CAPACITY = 64

#: Default cap on coalesced batch width.
DEFAULT_MAX_BATCH = 16

#: Reusable no-op context for the tracing-disabled fast path.
_NULL_SPAN = nullcontext(None)


@dataclass
class _Pending:
    x: np.ndarray
    future: Future
    enqueued_at: float
    deadline_at: Optional[float]
    #: Trace ids of the originating request(s); a coalesced batch span
    #: carries the union so every request links to its round spans.
    trace_ids: Tuple[str, ...] = ()


@dataclass
class _Lane:
    key: SessionKey
    mode: str
    session: EngineSession
    queue: List[_Pending] = field(default_factory=list)
    thread: Optional[threading.Thread] = None
    open: bool = True


class DynamicBatcher:
    """Coalesces concurrent applies into batched engine executions."""

    def __init__(
        self,
        max_wait_ms: float = 0.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        admission_capacity: int = DEFAULT_ADMISSION_CAPACITY,
        on_batch: Optional[Callable[[SessionKey, str, int], None]] = None,
    ):
        if max_batch < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, f"max_batch must be >= 1, got {max_batch}"
            )
        if admission_capacity < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"admission_capacity must be >= 1, got {admission_capacity}",
            )
        self.max_wait_ms = max_wait_ms
        self.max_batch = max_batch
        self.admission_capacity = admission_capacity
        self._on_batch = on_batch
        self._lanes: Dict[Tuple[SessionKey, str], _Lane] = {}
        self._cond = threading.Condition()
        #: Test/operations gate: while cleared, workers collect but do
        #: not execute — used to provoke deterministic coalescing and
        #: overload in tests. Open by default.
        self._gate = threading.Event()
        self._gate.set()
        self._closed = False

    # -- admission -------------------------------------------------------------

    def submit(
        self,
        key: SessionKey,
        mode: str,
        session: EngineSession,
        x: np.ndarray,
        deadline_ms: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue one request; returns a future resolving to ``y``.

        ``trace_id`` (when given) rides with the request: the batch
        that eventually executes it opens a span carrying every member
        request's trace id, so round spans emitted underneath link
        back to each coalesced request.

        Raises :class:`ServiceError` ``OVERLOADED`` when the lane's
        admission queue is full and ``SHUTTING_DOWN`` after
        :meth:`close`.
        """
        now = time.monotonic()
        item = _Pending(
            x=x,
            future=Future(),
            enqueued_at=now,
            deadline_at=(
                now + deadline_ms / 1e3 if deadline_ms is not None else None
            ),
            trace_ids=(trace_id,) if trace_id is not None else (),
        )
        with self._cond:
            if self._closed:
                raise ServiceError(
                    ErrorCode.SHUTTING_DOWN, "batcher is shutting down"
                )
            lane = self._lanes.get((key, mode))
            if lane is None or not lane.open:
                lane = _Lane(key=key, mode=mode, session=session)
                lane.thread = threading.Thread(
                    target=self._worker,
                    args=(lane,),
                    name=f"sttsv-batch:{key.tensor_id}:{mode}",
                    daemon=True,
                )
                self._lanes[(key, mode)] = lane
                lane.thread.start()
            if len(lane.queue) >= self.admission_capacity:
                raise ServiceError(
                    ErrorCode.OVERLOADED,
                    f"admission queue full ({self.admission_capacity}"
                    f" requests waiting on {key.label()}:{mode})",
                )
            lane.queue.append(item)
            self._cond.notify_all()
        return item.future

    def queue_depths(self) -> Dict[str, int]:
        """Waiting requests per lane (the stats ``queue_depth`` field)."""
        with self._cond:
            return {
                f"{key.label()}:{mode}": len(lane.queue)
                for (key, mode), lane in self._lanes.items()
            }

    def pending(self) -> int:
        """Total queued-but-unserved requests across lanes."""
        with self._cond:
            return sum(len(lane.queue) for lane in self._lanes.values())

    # -- test/operations gate ---------------------------------------------------

    def hold(self) -> None:
        """Pause batch execution (queued requests accumulate)."""
        self._gate.clear()

    def release(self) -> None:
        """Resume batch execution."""
        self._gate.set()

    # -- lane lifecycle ---------------------------------------------------------

    def close_lanes(self, key: SessionKey) -> None:
        """Tear down every lane of ``key`` (session eviction): pending
        requests fail with ``UNKNOWN_TENSOR`` and workers exit."""
        with self._cond:
            drained: List[_Pending] = []
            for (lane_key, _mode), lane in self._lanes.items():
                if lane_key == key:
                    lane.open = False
                    drained.extend(lane.queue)
                    lane.queue.clear()
            self._lanes = {
                lane_id: lane
                for lane_id, lane in self._lanes.items()
                if lane_id[0] != key
            }
            self._cond.notify_all()
        self._fail(
            drained,
            ServiceError(
                ErrorCode.UNKNOWN_TENSOR,
                f"session {key.label()} was evicted",
            ),
        )

    def close(self) -> None:
        """Stop all lanes; pending requests fail ``SHUTTING_DOWN``."""
        with self._cond:
            self._closed = True
            drained = []
            for lane in self._lanes.values():
                lane.open = False
                drained.extend(lane.queue)
                lane.queue.clear()
            self._lanes.clear()
            self._cond.notify_all()
        self._gate.set()
        self._fail(
            drained,
            ServiceError(ErrorCode.SHUTTING_DOWN, "server shutting down"),
        )

    # -- worker ----------------------------------------------------------------

    def _worker(self, lane: _Lane) -> None:
        while True:
            with self._cond:
                while lane.open and not lane.queue:
                    self._cond.wait()
                if not lane.open:
                    return
            # The gate sits outside the lock so held workers never
            # block admission.
            self._gate.wait()
            batch = self._collect(lane)
            if batch:
                self._execute(lane, batch)

    def _collect(self, lane: _Lane) -> List[_Pending]:
        """Drain up to ``max_batch`` requests, optionally waiting
        ``max_wait_ms`` to grow the batch; expire overdue items."""
        deadline = (
            time.monotonic() + self.max_wait_ms / 1e3
            if self.max_wait_ms > 0
            else None
        )
        batch: List[_Pending] = []
        expired: List[_Pending] = []
        with self._cond:
            while lane.open and len(batch) < self.max_batch:
                while lane.queue and len(batch) < self.max_batch:
                    item = lane.queue.pop(0)
                    now = time.monotonic()
                    if item.deadline_at is not None and now > item.deadline_at:
                        expired.append(item)
                    else:
                        batch.append(item)
                if deadline is None or not batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or len(batch) >= self.max_batch:
                    break
                self._cond.wait(timeout=remaining)
        self._fail(
            expired,
            ServiceError(
                ErrorCode.DEADLINE_EXCEEDED,
                "request expired in the admission queue",
            ),
        )
        return batch

    def _execute(self, lane: _Lane, batch: List[_Pending]) -> None:
        X = np.column_stack([item.x for item in batch])
        trace_ids = tuple(
            tid for item in batch for tid in item.trace_ids
        )
        tracer = get_tracer()
        try:
            with trace_context(*trace_ids):
                if tracer.enabled:
                    span_cm = tracer.span(
                        f"batch:{lane.key.label()}:{lane.mode}",
                        kind="batch",
                        attrs={
                            "lane": f"{lane.key.label()}:{lane.mode}",
                            "mode": lane.mode,
                            "size": len(batch),
                        },
                    )
                else:
                    span_cm = None
                with span_cm if span_cm is not None else _NULL_SPAN:
                    with lane.session.exec_lock:
                        Y = lane.session.apply_batch(X, mode=lane.mode)
        except Exception as error:  # noqa: BLE001 — forwarded to callers
            for item in batch:
                item.future.set_exception(error)
            return
        if self._on_batch is not None:
            self._on_batch(lane.key, lane.mode, len(batch))
        for col, item in enumerate(batch):
            item.future.set_result(np.ascontiguousarray(Y[:, col]))

    @staticmethod
    def _fail(items: List[_Pending], error: ServiceError) -> None:
        for item in items:
            item.future.set_exception(error)
