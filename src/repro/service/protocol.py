"""Wire protocol of the STTSV serving layer.

Every message — request or reply — is one *frame*:

::

    offset  size  field
    0       2     magic  b"SV"
    2       1     protocol version (1)
    3       1     message type (MessageType)
    4       4     header length  (unsigned big-endian)
    8       8     body length    (unsigned big-endian)
    16      ...   header: UTF-8 JSON object (parameters, metadata)
    ...     ...   body:   raw little-endian float64 array bytes

The JSON header carries everything small and structured (tensor ids,
modes, deadlines, error codes, stats snapshots); the body carries
vector/matrix payloads verbatim (shape and dtype are pinned in the
header by :func:`encode_array`), so numerical round-trips are bitwise:
the bytes a client sends are the bytes the engine sees.

Request types: ``REGISTER`` (resident-tensor upload — dense packed
payloads, or low-rank factors with header ``kind="symk"``), ``APPLY``
(one vector), ``APPLY_BATCH`` (a pre-batched ``n × s`` matrix),
``STATS`` (metrics snapshot), ``SHUTDOWN``, and ``UPDATE`` (stream one
rank-1 term ``(λ_new, v_new)`` into a resident low-rank tensor; the
reply echoes the session's monotone ``update_epoch``, which ``APPLY``
replies also carry so clients can fence reads after writes). Reply
types: ``RESULT`` (array payload), ``OK`` (JSON payload), and
``ERROR`` with a typed :class:`ErrorCode` — backpressure
(``OVERLOADED``), per-request deadline misses (``DEADLINE_EXCEEDED``),
client mistakes (``BAD_REQUEST``, ``UNKNOWN_TENSOR``), and epoch-fence
violations (``STALE_READ``) are distinct, machine-readable outcomes
rather than stringly-typed failures.
"""

from __future__ import annotations

import enum
import json
import socket
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError

MAGIC = b"SV"
PROTOCOL_VERSION = 1

#: Frame prefix: magic, version, type, header length, body length.
_PREFIX = struct.Struct("!2sBBIQ")

#: Caps guarding a malformed or hostile peer (1 MiB JSON, 1 GiB body).
MAX_HEADER_BYTES = 1 << 20
MAX_BODY_BYTES = 1 << 30


class ProtocolError(ReproError):
    """Malformed frame: bad magic, version, length, or encoding."""


class ConnectionClosedMidFrame(ProtocolError, ConnectionError):
    """The peer vanished inside a frame.

    Both a :class:`ProtocolError` (the frame can never be completed)
    and a :class:`ConnectionError` (the transport died), so framing
    code treats it as malformed input while retry logic — the client's
    auto-reconnect path — treats it as a retryable connection loss.
    """


class ServiceError(ReproError):
    """A typed ``ERROR`` reply, surfaced client-side.

    ``code`` is an :class:`ErrorCode` value, so callers can branch on
    overload vs. deadline vs. client error without parsing messages.
    """

    def __init__(self, code: "ErrorCode", message: str):
        super().__init__(f"[{code.value}] {message}")
        self.code = code
        self.detail = message


class MessageType(enum.IntEnum):
    """Frame discriminator (requests < 16 <= replies)."""

    REGISTER = 1
    APPLY = 2
    APPLY_BATCH = 3
    STATS = 4
    SHUTDOWN = 5
    UPDATE = 6
    RESULT = 16
    OK = 17
    ERROR = 18


class ErrorCode(enum.Enum):
    """Typed failure classes of ``ERROR`` replies."""

    BAD_REQUEST = "bad-request"
    UNSUPPORTED_VERSION = "unsupported-version"
    UNKNOWN_TENSOR = "unknown-tensor"
    OVERLOADED = "overloaded"
    DEADLINE_EXCEEDED = "deadline-exceeded"
    SHUTTING_DOWN = "shutting-down"
    STALE_READ = "stale-read"
    INTERNAL = "internal"


def pack_frame(
    msg_type: MessageType, header: Dict, body: bytes = b""
) -> bytes:
    """Serialize one frame (the inverse of :func:`unpack_frame`)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({len(header_bytes)} bytes)")
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(f"body too large ({len(body)} bytes)")
    return (
        _PREFIX.pack(
            MAGIC,
            PROTOCOL_VERSION,
            int(msg_type),
            len(header_bytes),
            len(body),
        )
        + header_bytes
        + body
    )


def unpack_frame(data: bytes) -> Tuple[MessageType, Dict, bytes]:
    """Parse one complete frame from ``data`` (exact length required)."""
    if len(data) < _PREFIX.size:
        raise ProtocolError(
            f"truncated frame: {len(data)} < {_PREFIX.size} prefix bytes"
        )
    magic, version, msg_type, header_len, body_len = _PREFIX.unpack_from(data)
    _check_prefix(magic, version, msg_type, header_len, body_len)
    expected = _PREFIX.size + header_len + body_len
    if len(data) != expected:
        raise ProtocolError(
            f"frame length mismatch: got {len(data)}, prefix says {expected}"
        )
    header = _decode_header(data[_PREFIX.size : _PREFIX.size + header_len])
    body = data[_PREFIX.size + header_len :]
    return MessageType(msg_type), header, body


def write_frame(
    sock: socket.socket,
    msg_type: MessageType,
    header: Dict,
    body: bytes = b"",
) -> None:
    """Send one frame over a connected socket."""
    sock.sendall(pack_frame(msg_type, header, body))


def read_frame(sock: socket.socket) -> Tuple[MessageType, Dict, bytes]:
    """Read exactly one frame; raises ``ConnectionError`` on clean EOF
    before any prefix byte, :class:`ProtocolError` on malformed input."""
    prefix = _recv_exact(sock, _PREFIX.size)
    magic, version, msg_type, header_len, body_len = _PREFIX.unpack(prefix)
    _check_prefix(magic, version, msg_type, header_len, body_len)
    header = _decode_header(_recv_exact(sock, header_len))
    body = _recv_exact(sock, body_len) if body_len else b""
    return MessageType(msg_type), header, body


def _check_prefix(
    magic: bytes, version: int, msg_type: int, header_len: int, body_len: int
) -> None:
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version}"
            f" (this build speaks {PROTOCOL_VERSION})"
        )
    try:
        MessageType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type}") from None
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header too large ({header_len} bytes)")
    if body_len > MAX_BODY_BYTES:
        raise ProtocolError(f"body too large ({body_len} bytes)")


def _decode_header(raw: bytes) -> Dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable header: {error}") from None
    if not isinstance(header, dict):
        raise ProtocolError(
            f"header must be a JSON object, got {type(header).__name__}"
        )
    return header


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count and not chunks:
                raise ConnectionError("connection closed")
            raise ConnectionClosedMidFrame(
                f"connection closed mid-frame ({count - remaining} of"
                f" {count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- incremental parsing --------------------------------------------------------


class FrameReader:
    """Incremental frame parser for non-blocking sockets.

    The event-loop connection layer feeds whatever bytes ``recv``
    produced; complete frames come back out as soon as their last byte
    arrives::

        reader = FrameReader()
        reader.feed(chunk)
        while (frame := reader.next_frame()) is not None:
            msg_type, header, body = frame

    Validation is identical to :func:`read_frame` — the prefix is
    checked the moment its 16 bytes are buffered, so an oversized
    length, bad magic, unknown type, or version mismatch raises
    :class:`ProtocolError` *before* any payload is read, bounding what
    a hostile peer can make the server buffer. A raised reader is
    poisoned: the stream has no recoverable frame boundary, so every
    later call re-raises.
    """

    def __init__(self):
        self._buffer = bytearray()
        #: Parsed prefix of the in-progress frame, or None between frames.
        self._pending: Optional[Tuple[int, int, int]] = None
        self._error: Optional[ProtocolError] = None

    def feed(self, data: bytes) -> None:
        """Buffer bytes as they arrive off the socket."""
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        """Bytes held but not yet returned as a frame."""
        return len(self._buffer)

    def next_frame(self) -> Optional[Tuple[MessageType, Dict, bytes]]:
        """The next complete frame, or None until more bytes arrive."""
        if self._error is not None:
            raise self._error
        try:
            return self._parse()
        except ProtocolError as error:
            self._error = error
            raise

    def _parse(self) -> Optional[Tuple[MessageType, Dict, bytes]]:
        if self._pending is None:
            if len(self._buffer) < _PREFIX.size:
                return None
            magic, version, msg_type, header_len, body_len = (
                _PREFIX.unpack_from(self._buffer)
            )
            _check_prefix(magic, version, msg_type, header_len, body_len)
            del self._buffer[: _PREFIX.size]
            self._pending = (msg_type, header_len, body_len)
        msg_type, header_len, body_len = self._pending
        if len(self._buffer) < header_len + body_len:
            return None
        header = _decode_header(bytes(self._buffer[:header_len]))
        body = bytes(self._buffer[header_len : header_len + body_len])
        del self._buffer[: header_len + body_len]
        self._pending = None
        return MessageType(msg_type), header, body


# -- array payloads ------------------------------------------------------------


def encode_array(array: np.ndarray) -> Tuple[Dict, bytes]:
    """Header fields + raw bytes for a float64 payload (C order)."""
    array = np.ascontiguousarray(np.asarray(array, dtype="<f8"))
    return {"shape": list(array.shape), "dtype": "<f8"}, array.tobytes()


def decode_array(
    header: Dict,
    body: bytes,
    expected_ndim: Optional[int] = None,
) -> np.ndarray:
    """Reconstruct the payload array; validates shape/length/dtype."""
    shape = header.get("shape")
    if (
        not isinstance(shape, list)
        or not shape
        or not all(isinstance(d, int) and d >= 0 for d in shape)
    ):
        raise ProtocolError(f"bad array shape {shape!r}")
    if header.get("dtype", "<f8") != "<f8":
        raise ProtocolError(
            f"unsupported dtype {header.get('dtype')!r} (float64 only)"
        )
    if expected_ndim is not None and len(shape) != expected_ndim:
        raise ProtocolError(
            f"expected a {expected_ndim}-d payload, got shape {shape}"
        )
    count = int(np.prod(shape, dtype=np.int64)) if shape else 0
    if len(body) != 8 * count:
        raise ProtocolError(
            f"body carries {len(body)} bytes, shape {shape} needs"
            f" {8 * count}"
        )
    return np.frombuffer(body, dtype="<f8").reshape(shape).copy()


def error_header(code: ErrorCode, message: str) -> Dict:
    """Header of a typed ``ERROR`` reply."""
    return {"code": code.value, "message": message}


def parse_error(header: Dict) -> ServiceError:
    """Turn an ``ERROR`` reply header back into a :class:`ServiceError`."""
    try:
        code = ErrorCode(header.get("code"))
    except ValueError:
        code = ErrorCode.INTERNAL
    return ServiceError(code, str(header.get("message", "")))
