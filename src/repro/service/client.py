"""Blocking client and closed-loop load generator for the STTSV server.

:class:`ServiceClient` is one TCP connection speaking the frame
protocol — register a tensor, apply vectors (optionally pre-batched),
pull stats, request shutdown. Typed ``ERROR`` replies re-raise as
:class:`~repro.service.protocol.ServiceError`, so callers branch on
``error.code`` (``OVERLOADED``, ``DEADLINE_EXCEEDED``, ...) exactly as
the server classified the failure.

Transport failures are retried: a reset, broken pipe, or mid-frame
close (the server restarted, or an idle connection was reaped) tears
down the socket, reconnects after a short exponential backoff, and
replays the request — bounded by ``retries`` attempts, after which the
underlying ``OSError`` propagates. Malformed-but-delivered frames
(plain :class:`~repro.service.protocol.ProtocolError`) are *not*
retried: the peer answered, it just answered garbage, and replaying
the request cannot fix that.

:func:`run_load` is the closed-loop generator behind ``repro load``
and the service benchmark: ``clients`` threads, each with its own
connection, each issuing ``requests_per_client`` applies back to back.
Concurrent in-flight requests are what give the server's micro-batcher
something to coalesce — the returned summary carries client-side
throughput and latency percentiles next to the server's own stats
snapshot (batch-size histogram included) for cross-checking.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.protocol import (
    ErrorCode,
    MessageType,
    ProtocolError,
    ServiceError,
    decode_array,
    encode_array,
    parse_error,
    read_frame,
    write_frame,
)
from repro.tensor.packed import PackedSymmetricTensor


#: Reconnect attempts after the first transport failure.
DEFAULT_RETRIES = 2

#: First-retry backoff; doubles per attempt.
DEFAULT_RETRY_BACKOFF_S = 0.05


class ServiceClient:
    """One blocking connection to an :class:`STTSVServer` (or gateway),
    with bounded reconnect-and-replay on transport failure."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 30.0,
        retries: int = DEFAULT_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._retry_backoff_s = retry_backoff_s
        # Connect lazily: the first ``_roundtrip`` dials inside its
        # bounded-backoff retry loop, so a transient refusal at
        # construction time (racing a shard restart behind the
        # gateway) is retried like any other transport failure instead
        # of raising before ``retries`` ever applied.
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        #: Transport failures recovered by reconnect-and-replay —
        #: including a failed initial dial that a later attempt in the
        #: same bounded-backoff loop recovered.
        self.reconnects = 0
        #: Trace id of the most recent ``apply``/``apply_batch`` reply
        #: (the server mints one per request and echoes it back, so
        #: ``repro trace <id>`` can find that request's spans).
        self.last_trace_id: Optional[str] = None
        #: Update epoch echoed by the most recent symk ``update`` /
        #: ``apply`` / ``apply_batch`` reply — pass it back as
        #: ``min_epoch`` to fence a read after your own writes.
        self.last_update_epoch: Optional[int] = None

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(
        self, msg_type: MessageType, header: Dict, body: bytes = b""
    ) -> Tuple[MessageType, Dict, bytes]:
        """One request/reply exchange; raises on typed ``ERROR``.

        A reset, broken pipe, or mid-frame close reconnects (with
        exponential backoff) and replays the request, up to
        ``retries`` extra attempts. Requests here are safe to replay:
        applies are pure computation, registrations are idempotent
        upserts.
        """
        with self._lock:
            for attempt in range(self._retries + 1):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    write_frame(self._sock, msg_type, header, body)
                    reply_type, reply_header, reply_body = read_frame(
                        self._sock
                    )
                    break
                except ProtocolError as error:
                    if not isinstance(error, ConnectionError):
                        raise  # delivered-but-malformed: not retryable
                    self._drop_socket()
                    if attempt == self._retries:
                        raise
                    self.reconnects += 1
                    time.sleep(self._retry_backoff_s * (2**attempt))
                except OSError:
                    self._drop_socket()
                    if attempt == self._retries:
                        raise
                    self.reconnects += 1
                    time.sleep(self._retry_backoff_s * (2**attempt))
        if reply_type == MessageType.ERROR:
            raise parse_error(reply_header)
        return reply_type, reply_header, reply_body

    @staticmethod
    def _expect(reply_type: MessageType, expected: MessageType) -> None:
        if reply_type != expected:
            raise ProtocolError(
                f"expected {expected.name} reply, got {reply_type.name}"
            )

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests --------------------------------------------------------------

    def register(
        self,
        tensor_id: str,
        tensor: PackedSymmetricTensor,
        q: int,
        backend: str = "simulated",
        strategy: str = "auto",
        variant: str = "point-to-point",
        order: int = 3,
    ) -> Dict:
        """Upload a tensor and warm an engine session for it.

        Pass ``backend="auto"`` and/or ``variant="auto"`` to let the
        server's planner pick the cheapest configuration under its
        calibrated constants; the reply echoes what was chosen
        (``planned: true``). For ``order=4`` pass an
        :class:`~repro.tensor.ndpacked.NdPackedSymmetricTensor` (any
        object with ``.n`` and packed ``.data`` works) and ``q`` is the
        SQS parameter ``k`` of ``S(2^k, 4, 3)``.
        """
        header, body = encode_array(tensor.data)
        header.update(
            {
                "tensor_id": tensor_id,
                "n": tensor.n,
                "q": q,
                "backend": backend,
                "strategy": strategy,
                "variant": variant,
                "order": order,
            }
        )
        reply_type, reply_header, _ = self._roundtrip(
            MessageType.REGISTER, header, body
        )
        self._expect(reply_type, MessageType.OK)
        return reply_header

    def register_symk(
        self,
        tensor_id: str,
        tensor,
        q: int = 2,
        P: Optional[int] = None,
        backend: str = "simulated",
        strategy: str = "auto",
        variant: str = "point-to-point",
    ) -> Dict:
        """Upload a low-rank :class:`~repro.tensor.symk.SymKTensor`.

        The body carries the factorization — ``lambda_`` then ``V``
        row-major as one flat float64 array — so the wire cost is
        ``r + n·r`` words instead of the dense packed payload. ``P``
        defaults server-side to ``q(q²+1)`` so symk and dense plans
        price side by side; any ``P ≥ 1`` is accepted (no Steiner
        structure constrains it). Pass ``backend="auto"`` or
        ``variant="auto"`` to let the server's planner choose using
        the symk communication formula ``(P−1)·r``.
        """
        payload = np.concatenate(
            [
                np.ascontiguousarray(tensor.lambda_, dtype=np.float64),
                np.ascontiguousarray(tensor.V, dtype=np.float64).ravel(),
            ]
        )
        header, body = encode_array(payload)
        header.update(
            {
                "tensor_id": tensor_id,
                "kind": "symk",
                "n": tensor.n,
                "rank": tensor.r,
                "order": tensor.m,
                "q": q,
                "backend": backend,
                "strategy": strategy,
                "variant": variant,
            }
        )
        if P is not None:
            header["P"] = P
        reply_type, reply_header, _ = self._roundtrip(
            MessageType.REGISTER, header, body
        )
        self._expect(reply_type, MessageType.OK)
        self.last_update_epoch = reply_header.get("update_epoch")
        return reply_header

    def update(
        self, tensor_id: str, weight: float, vector: np.ndarray
    ) -> int:
        """Stream one rank-1 update ``(λ_new, v_new)`` into a served
        symk tensor and return the new update epoch.

        Updates are applied under the session lock in arrival order;
        the returned epoch is the fence token: pass it as
        ``min_epoch`` to a later :meth:`apply` to guarantee the read
        reflects this write (a replica that has not caught up answers
        with a typed ``STALE_READ`` error instead of stale data).

        Unlike applies and registrations, an update is *not*
        idempotent: if the connection dies after the server applied
        the frame but before the reply arrived, the replay applies it
        again. The echoed epoch is the detector — it advances by
        exactly one per applied update, so a caller streaming k
        updates expects to land on ``start + k`` and can rebuild on
        mismatch.
        """
        payload = np.concatenate(
            [
                np.asarray([weight], dtype=np.float64),
                np.ascontiguousarray(vector, dtype=np.float64),
            ]
        )
        header, body = encode_array(payload)
        header["tensor_id"] = tensor_id
        reply_type, reply_header, _ = self._roundtrip(
            MessageType.UPDATE, header, body
        )
        self._expect(reply_type, MessageType.OK)
        epoch = int(reply_header["update_epoch"])
        self.last_update_epoch = epoch
        return epoch

    def apply(
        self,
        tensor_id: str,
        x: np.ndarray,
        mode: str = "plan",
        deadline_ms: Optional[float] = None,
        trace_id: Optional[str] = None,
        min_epoch: Optional[int] = None,
    ) -> np.ndarray:
        """Serve ``y = A ×₂ x ×₃ x`` for one vector.

        Pass ``trace_id`` to propagate a caller-minted id; otherwise
        the server mints one. Either way the id used is readable on
        :attr:`last_trace_id` after the call returns. For symk
        sessions, pass ``min_epoch`` (an epoch previously returned by
        :meth:`update`) to fence the read after that write; the
        server replies ``STALE_READ`` rather than serve older state.
        """
        header, body = encode_array(x)
        header["tensor_id"] = tensor_id
        header["mode"] = mode
        if deadline_ms is not None:
            header["deadline_ms"] = deadline_ms
        if trace_id is not None:
            header["trace_id"] = trace_id
        if min_epoch is not None:
            header["min_epoch"] = min_epoch
        reply_type, reply_header, reply_body = self._roundtrip(
            MessageType.APPLY, header, body
        )
        self._expect(reply_type, MessageType.RESULT)
        self.last_trace_id = reply_header.get("trace_id")
        if "update_epoch" in reply_header:
            self.last_update_epoch = int(reply_header["update_epoch"])
        return decode_array(reply_header, reply_body, expected_ndim=1)

    def apply_batch(
        self,
        tensor_id: str,
        X: np.ndarray,
        mode: str = "plan",
        trace_id: Optional[str] = None,
        min_epoch: Optional[int] = None,
    ) -> np.ndarray:
        """Serve a pre-batched ``n × s`` matrix in one request."""
        header, body = encode_array(X)
        header["tensor_id"] = tensor_id
        header["mode"] = mode
        if trace_id is not None:
            header["trace_id"] = trace_id
        if min_epoch is not None:
            header["min_epoch"] = min_epoch
        reply_type, reply_header, reply_body = self._roundtrip(
            MessageType.APPLY_BATCH, header, body
        )
        self._expect(reply_type, MessageType.RESULT)
        self.last_trace_id = reply_header.get("trace_id")
        if "update_epoch" in reply_header:
            self.last_update_epoch = int(reply_header["update_epoch"])
        return decode_array(reply_header, reply_body, expected_ndim=2)

    def stats(self) -> Dict:
        """Live metrics snapshot (server, sessions, pool, config)."""
        reply_type, reply_header, _ = self._roundtrip(
            MessageType.STATS, {}
        )
        self._expect(reply_type, MessageType.OK)
        return reply_header

    def metrics_text(self) -> str:
        """The server's metrics registry in Prometheus text format."""
        reply_type, _, reply_body = self._roundtrip(
            MessageType.STATS, {"format": "prometheus"}
        )
        self._expect(reply_type, MessageType.OK)
        return reply_body.decode("utf-8")

    def spans_jsonl(self, trace_id: Optional[str] = None) -> str:
        """The server's span buffer as JSON-lines text, optionally
        filtered to one trace id."""
        header: Dict = {"format": "spans"}
        if trace_id is not None:
            header["trace_id"] = trace_id
        reply_type, _, reply_body = self._roundtrip(
            MessageType.STATS, header
        )
        self._expect(reply_type, MessageType.OK)
        return reply_body.decode("utf-8")

    def shutdown(self) -> None:
        """Ask the server to stop (replies OK before stopping)."""
        reply_type, _, _ = self._roundtrip(MessageType.SHUTDOWN, {})
        self._expect(reply_type, MessageType.OK)


# -- load generation ------------------------------------------------------------


def run_load(
    host: str,
    port: int,
    tensor_id: str,
    n: int,
    clients: int = 16,
    requests_per_client: int = 32,
    mode: str = "plan",
    deadline_ms: Optional[float] = None,
    seed: int = 0,
    retries: int = DEFAULT_RETRIES,
) -> Dict:
    """Drive the server with ``clients`` concurrent closed-loop workers.

    Every worker owns a connection and a seeded vector stream, issues
    its requests back to back, and records per-request latency
    client-side. Returns a JSON-compatible summary::

        {clients, requests, ok, overloaded, deadline_exceeded, errors,
         elapsed_s, throughput_rps, latency: {p50_ms, p95_ms, p99_ms,
         mean_ms, max_ms}, server_stats: <final STATS snapshot>}
    """
    latencies: List[float] = []
    counts = {"ok": 0, "overloaded": 0, "deadline_exceeded": 0, "errors": 0}
    lock = threading.Lock()
    start_gate = threading.Event()

    def worker(worker_id: int) -> None:
        rng = np.random.default_rng(seed + worker_id)
        local_lat: List[float] = []
        local = {"ok": 0, "overloaded": 0, "deadline_exceeded": 0, "errors": 0}
        with ServiceClient(host, port, retries=retries) as client:
            start_gate.wait()
            for _ in range(requests_per_client):
                x = rng.standard_normal(n)
                t0 = time.monotonic()
                try:
                    client.apply(
                        tensor_id, x, mode=mode, deadline_ms=deadline_ms
                    )
                except ServiceError as error:
                    if error.code == ErrorCode.OVERLOADED:
                        local["overloaded"] += 1
                    elif error.code == ErrorCode.DEADLINE_EXCEEDED:
                        local["deadline_exceeded"] += 1
                    else:
                        local["errors"] += 1
                except OSError:
                    # Retries exhausted: count it, keep the worker
                    # alive — the client redials on the next request.
                    local["errors"] += 1
                else:
                    local["ok"] += 1
                    local_lat.append(time.monotonic() - t0)
        with lock:
            latencies.extend(local_lat)
            for name, value in local.items():
                counts[name] += value

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    wall_start = time.monotonic()
    start_gate.set()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - wall_start

    if latencies:
        arr = np.asarray(latencies)
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        latency = {
            "mean_ms": float(arr.mean()) * 1e3,
            "p50_ms": float(p50) * 1e3,
            "p95_ms": float(p95) * 1e3,
            "p99_ms": float(p99) * 1e3,
            "max_ms": float(arr.max()) * 1e3,
        }
    else:
        latency = {
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }

    with ServiceClient(host, port) as client:
        server_stats = client.stats()

    return {
        "clients": clients,
        "requests": clients * requests_per_client,
        **counts,
        "elapsed_s": elapsed,
        "throughput_rps": (counts["ok"] / elapsed) if elapsed > 0 else 0.0,
        "latency": latency,
        "server_stats": server_stats,
    }
