"""Consistent-hash gateway routing STTSV traffic across shard servers.

The gateway is a :class:`~repro.service.eventloop.FrameLoopServer`
speaking the exact same wire protocol as a shard — clients cannot tell
one from the other — that owns no engine state of its own. It holds:

* a :class:`~repro.service.ring.HashRing` placing every registered
  tensor's ``(tensor_id, q, P)`` routing key on backend shards;
* the registration payloads themselves, so membership changes can
  **re-register** resident tensors on their new owners (the bytes a
  client uploaded once are replayed by the gateway, never re-requested);
* per-shard connection pools, health state, in-flight counts, and
  request counters.

Routing: ``REGISTER`` forwards to the key's primary shard and
replicates to the next ``replication - 1`` distinct ring successors, so
a hot session is already warm on a secondary when its primary dies.
``APPLY``/``APPLY_BATCH`` forward to the primary with headers intact —
trace ids propagate end to end, and typed errors (``OVERLOADED``,
``DEADLINE_EXCEEDED``) pass through verbatim. ``UPDATE`` (streamed
rank-1 updates into a low-rank symk session) forwards to *every*
owner and the frame is retained in the tensor's update log, so any
replay — failover rebalance, restarted-shard retry — reproduces the
stream in epoch order and lands the new owner on byte-identical
factors.

Failure handling: a connection error to a shard marks it down, removes
it from the ring, re-registers the affected tensors on their new
owners, and retries the request there — a crashed shard costs one
reroute, not a failed request. A shard that answers ``UNKNOWN_TENSOR``
(restarted, or evicted the session) gets the registration replayed and
the request retried once.

Graceful drain (:meth:`STTSVGateway.drain`): the shard leaves the ring
first (no new routes), in-flight applies finish, resident tensors
re-register on their successors, then its connections close — the
membership change a deploy performs, as opposed to the one a crash
forces.

:func:`spawn_shard` / :class:`LocalFleet` launch real shard *processes*
(``python -m repro serve``) for the fleet CLI, the chaos tests, and the
fleet benchmark.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    MetricFamily,
    MetricsRegistry,
    Sample,
    default_registry,
)
from repro.service.eventloop import (
    DEFAULT_EXECUTOR_WORKERS,
    FrameLoopServer,
    Reply,
)
from repro.service.metrics import ServerMetrics
from repro.service.protocol import (
    ErrorCode,
    MessageType,
    ServiceError,
    read_frame,
    write_frame,
)
from repro.service.ring import DEFAULT_VNODES, HashRing, ring_key

#: Replicas (primary included) a registration is placed on.
DEFAULT_REPLICATION = 2

#: Socket timeout for gateway-to-shard round-trips.
DEFAULT_BACKEND_TIMEOUT_S = 60.0


class _Backend:
    """One shard: address, health, a pool of idle connections, counters.

    Round-trips are exclusive per socket — concurrent forwards each
    pop (or dial) their own connection and return it on success, so
    frames from different clients never interleave on one stream.
    """

    def __init__(
        self, name: str, host: str, port: int,
        timeout: float = DEFAULT_BACKEND_TIMEOUT_S,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.timeout = timeout
        self.healthy = True
        self.state = "up"
        self.requests = 0
        self.errors = 0
        self._idle: List[socket.socket] = []
        self._lock = threading.Lock()

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def roundtrip(
        self, msg_type: MessageType, header: Dict, body: bytes = b""
    ) -> Tuple[MessageType, Dict, bytes]:
        """One forwarded exchange; raises ``OSError`` when the shard is
        unreachable. A failure on a pooled (possibly stale) connection
        retries once on a fresh dial before giving up."""
        with self._lock:
            sock = self._idle.pop() if self._idle else None
        pooled = sock is not None
        if sock is None:
            sock = self._dial()
        try:
            write_frame(sock, msg_type, header, body)
            reply = read_frame(sock)
        except (OSError, ConnectionError):
            try:
                sock.close()
            except OSError:
                pass
            if not pooled:
                with self._lock:
                    self.errors += 1
                raise
            # The pooled connection may simply have gone stale (shard
            # restarted between requests); one fresh dial decides.
            sock = self._dial()
            try:
                write_frame(sock, msg_type, header, body)
                reply = read_frame(sock)
            except (OSError, ConnectionError):
                try:
                    sock.close()
                except OSError:
                    pass
                with self._lock:
                    self.errors += 1
                raise
        with self._lock:
            self._idle.append(sock)
            self.requests += 1
        return reply

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass


class _TensorRecord:
    """One registration the gateway can replay: routing identity, the
    original frame payload, and — for streamed-update tensors — every
    accepted ``UPDATE`` frame in epoch order.

    The update log is what makes failover exact: a shard that inherits
    the tensor receives the registration replay (epoch 0) followed by
    the retained updates in order, so its resident factors are
    byte-identical to the primary's at the log's epoch. ``update_lock``
    serializes update forwarding per tensor; the list itself is
    mutated only under the gateway state lock so rebalance reads a
    consistent prefix."""

    __slots__ = (
        "tensor_id", "q", "P", "order", "key", "header", "body", "owners",
        "updates", "update_lock",
    )

    def __init__(
        self, tensor_id: str, q: int, P: int,
        header: Dict, body: bytes, owners: Tuple[str, ...],
        order: int = 3,
    ):
        self.tensor_id = tensor_id
        self.q = q
        self.P = P
        self.order = order
        self.key = ring_key(tensor_id, q, P, order=order)
        self.header = header
        self.body = body
        self.owners = owners
        self.updates: List[Tuple[Dict, bytes]] = []
        self.update_lock = threading.Lock()


class STTSVGateway(FrameLoopServer):
    """Route the STTSV protocol across N backend shards.

    ``backends`` is a sequence of ``(host, port)`` addresses (named
    ``host:port`` on the ring) or ``(name, host, port)`` triples.
    """

    def __init__(
        self,
        backends: Sequence[Tuple],
        host: str = "127.0.0.1",
        port: int = 0,
        replication: int = DEFAULT_REPLICATION,
        vnodes: int = DEFAULT_VNODES,
        backend_timeout_s: float = DEFAULT_BACKEND_TIMEOUT_S,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
        max_inflight: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(
            host=host,
            port=port,
            executor_workers=executor_workers,
            max_inflight=max_inflight,
            name="sttsv-gw",
        )
        if replication < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"replication must be >= 1, got {replication}",
            )
        self.replication = replication
        self.backend_timeout_s = backend_timeout_s
        self.registry = registry if registry is not None else default_registry()
        self.metrics = ServerMetrics()
        self._ring = HashRing(vnodes=vnodes)
        self._backends: Dict[str, _Backend] = {}
        self._tensors: Dict[str, _TensorRecord] = {}
        #: Guards ring/backends/tensors; re-entrant because a rebalance
        #: round-trip that fails marks another backend down inside it.
        self._state = threading.RLock()
        self._drain_cond = threading.Condition(self._state)
        self._inflight_by_shard: Dict[str, int] = {}
        self._events = {
            "reroutes": 0,
            "rebalanced_registrations": 0,
            "replica_registrations": 0,
            "replayed_updates": 0,
            "drains": 0,
        }
        for spec in backends:
            if len(spec) == 3:
                name, spec_host, spec_port = spec
            else:
                spec_host, spec_port = spec
                name = f"{spec_host}:{spec_port}"
            self._admit(
                _Backend(
                    name, spec_host, int(spec_port),
                    timeout=backend_timeout_s,
                )
            )

    def _admit(self, backend: _Backend) -> None:
        with self._state:
            self._backends[backend.name] = backend
            self._inflight_by_shard.setdefault(backend.name, 0)
            self._ring.add(backend.name)

    # -- lifecycle -------------------------------------------------------------

    def on_start(self) -> None:
        self.registry.register_collector(self._collect_metrics)

    def on_stop(self) -> None:
        self.registry.unregister_collector(self._collect_metrics)
        with self._state:
            backends = list(self._backends.values())
        for backend in backends:
            backend.close()

    def __enter__(self) -> "STTSVGateway":
        self.start()
        return self

    # -- loop hooks ------------------------------------------------------------

    def note_connection(self) -> None:
        self.metrics.incr("connections_opened")

    def note_bad_frame(self) -> None:
        self.metrics.incr("bad_requests")

    def note_error(self, code: ErrorCode) -> None:
        if code == ErrorCode.OVERLOADED:
            self.metrics.incr("rejected_overload")
        elif code == ErrorCode.DEADLINE_EXCEEDED:
            self.metrics.incr("deadline_exceeded")
        elif code == ErrorCode.INTERNAL:
            self.metrics.incr("internal_errors")
        else:
            self.metrics.incr("bad_requests")

    # -- membership ------------------------------------------------------------

    def add_backend(
        self, address: Tuple[str, int], name: Optional[str] = None
    ) -> str:
        """Join (or re-join) a shard and rebalance affected tensors
        onto it. Returns the shard's ring name."""
        host, port = address
        shard = name if name is not None else f"{host}:{port}"
        with self._state:
            old = self._backends.get(shard)
            if old is not None:
                old.close()
            self._admit(
                _Backend(shard, host, int(port), timeout=self.backend_timeout_s)
            )
            self._rebalance()
        return shard

    def drain(self, name: str, timeout: Optional[float] = 30.0) -> bool:
        """Gracefully remove a shard: leave the ring (no new routes),
        wait for its in-flight applies to finish, re-register its
        resident tensors on their successors, close its connections.
        Returns False if in-flight work outlived ``timeout``.

        Draining the *last* shard raises a typed
        :class:`~repro.errors.ConfigurationError` (from the ring): a
        planned removal must place a successor first, unlike a crash,
        which evicts unconditionally."""
        with self._state:
            backend = self._backends.get(name)
            if backend is None:
                return True
            self._ring.remove(name)
            backend.state = "draining"
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            drained = True
            while self._inflight_by_shard.get(name, 0) > 0:
                remaining = (
                    deadline - time.monotonic()
                    if deadline is not None
                    else None
                )
                if remaining is not None and remaining <= 0:
                    drained = False
                    break
                self._drain_cond.wait(timeout=remaining)
            self._rebalance()
            backend.healthy = False
            backend.state = "drained"
            self._events["drains"] += 1
        backend.close()
        return drained

    def _backend_down(self, name: str) -> None:
        """A forward failed at the transport: evict the shard and move
        its tensors. Idempotent per outage."""
        with self._state:
            backend = self._backends.get(name)
            if backend is None or not backend.healthy:
                return
            backend.healthy = False
            backend.state = "down"
            self._ring.remove(name, allow_empty=True)
            self._events["reroutes"] += 1
            self._rebalance()
        backend.close()

    def _rebalance(self) -> None:
        """Recompute every tensor's owners against the current ring and
        replay registrations — then the tensor's retained ``UPDATE``
        frames, in epoch order — on newly-responsible shards. Caller
        holds the state lock; forwarding failures recurse into
        :meth:`_backend_down` (re-entrant lock) and the loop re-checks."""
        for record in list(self._tensors.values()):
            for _attempt in range(len(self._backends) + 1):
                new_owners = tuple(
                    self._ring.nodes_for(record.key, self.replication)
                )
                added = [
                    owner for owner in new_owners
                    if owner not in record.owners
                ]
                try:
                    for owner in added:
                        self._replay_record(owner, record)
                except (OSError, ConnectionError):
                    self._backend_down(owner)
                    continue
                record.owners = new_owners
                break

    def _replay_record(self, owner: str, record: _TensorRecord) -> None:
        """Replay one tensor onto one shard: the registration (which
        resets the shard's session to epoch 0) followed by every
        retained update frame in order, landing the shard on the log's
        epoch with factors byte-identical to the original stream.

        The update log is snapshotted first — an update racing the
        replay can leave the shard one epoch behind the log, which the
        client's ``min_epoch`` fence converts into a typed retry
        rather than a stale read."""
        backend = self._backends[owner]
        with self._state:
            updates = list(record.updates)
        backend.roundtrip(
            MessageType.REGISTER, record.header, record.body
        )
        with self._state:
            self._events["rebalanced_registrations"] += 1
        for update_header, update_body in updates:
            backend.roundtrip(
                MessageType.UPDATE, update_header, update_body
            )
            with self._state:
                self._events["replayed_updates"] += 1

    # -- request dispatch ------------------------------------------------------

    def handle_request(
        self, msg_type: MessageType, header: Dict, body: bytes
    ) -> Reply:
        if msg_type == MessageType.REGISTER:
            return self._handle_register(header, body)
        if msg_type in (MessageType.APPLY, MessageType.APPLY_BATCH):
            return self._forward_apply(msg_type, header, body)
        if msg_type == MessageType.UPDATE:
            return self._forward_update(header, body)
        if msg_type == MessageType.STATS:
            return self._handle_stats(header)
        if msg_type == MessageType.SHUTDOWN:
            return Reply(
                MessageType.OK, {"stopping": True},
                close=True, then=self.stop,
            )
        raise ServiceError(
            ErrorCode.BAD_REQUEST,
            f"{MessageType(msg_type).name} is not a request type",
        )

    def _handle_register(self, header: Dict, body: bytes) -> Reply:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs a tensor_id string"
            )
        try:
            q = int(header["q"])
        except (KeyError, TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "register needs integer n and q"
            ) from None
        try:
            order = int(header.get("order", 3))
        except (TypeError, ValueError):
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "order must be an integer"
            ) from None
        if "P" in header:
            # symk registrations may pin P explicitly (no Steiner
            # structure constrains it); the routing key must match
            # whatever the shard will put in its session key.
            try:
                P = int(header["P"])
            except (TypeError, ValueError):
                raise ServiceError(
                    ErrorCode.BAD_REQUEST, "P must be an integer"
                ) from None
        elif order == 4:
            # q is the SQS parameter k of S(2^k, 4, 3).
            points = 2**q
            P = points * (points - 1) * (points - 2) // 24
        else:
            P = q * (q * q + 1)
        key = ring_key(tensor_id, q, P, order=order)
        # Like _forward_apply: a dead primary is discovered (and
        # evicted) by the very forward that fails, so re-read the ring
        # and retry on the new primary instead of surfacing the
        # transport error to the client.
        with self._state:
            attempts = len(self._backends) + 2
        for _attempt in range(attempts):
            with self._state:
                owners = tuple(self._ring.nodes_for(key, self.replication))
            if not owners:
                raise ServiceError(
                    ErrorCode.INTERNAL, "no healthy backend shards"
                )
            try:
                reply_type, reply_header, reply_body = self._forward_to(
                    owners[0], MessageType.REGISTER, header, body
                )
            except (OSError, ConnectionError):
                continue  # primary evicted; ring already rebalanced
            break
        else:
            raise ServiceError(
                ErrorCode.INTERNAL,
                f"registration could not be placed after {attempts}"
                " attempts",
            )
        if reply_type == MessageType.ERROR:
            return Reply(reply_type, reply_header, reply_body)
        # Replicate to the successors so a hot session is already warm
        # on a secondary shard when the primary dies. A replica that
        # fails mid-registration is an outage like any other — evict
        # and let the rebalance place the copy elsewhere.
        for replica in owners[1:]:
            try:
                self._backends[replica].roundtrip(
                    MessageType.REGISTER, header, body
                )
                with self._state:
                    self._events["replica_registrations"] += 1
            except (OSError, ConnectionError):
                self._backend_down(replica)
        with self._state:
            owners = tuple(self._ring.nodes_for(key, self.replication))
            self._tensors[tensor_id] = _TensorRecord(
                tensor_id, q, P, dict(header), bytes(body), owners,
                order=order,
            )
        self.metrics.incr("registrations")
        reply_header = dict(reply_header)
        reply_header["shard"] = owners[0] if owners else None
        reply_header["replicas"] = list(owners[1:])
        return Reply(reply_type, reply_header, reply_body)

    def _forward_to(
        self, name: str, msg_type: MessageType, header: Dict, body: bytes
    ) -> Tuple[MessageType, Dict, bytes]:
        """Round-trip against one shard, tracking in-flight counts for
        drain; transport failure evicts the shard and re-raises."""
        with self._state:
            backend = self._backends.get(name)
            if backend is None or not backend.healthy:
                raise ServiceError(
                    ErrorCode.INTERNAL, f"shard {name} is not available"
                )
            self._inflight_by_shard[name] = (
                self._inflight_by_shard.get(name, 0) + 1
            )
        try:
            return backend.roundtrip(msg_type, header, body)
        except (OSError, ConnectionError):
            self._backend_down(name)
            raise
        finally:
            with self._state:
                self._inflight_by_shard[name] -= 1
                self._drain_cond.notify_all()

    def _forward_apply(
        self, msg_type: MessageType, header: Dict, body: bytes
    ) -> Reply:
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "request needs a tensor_id string"
            )
        record = self._tensors.get(tensor_id)
        if record is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_TENSOR,
                f"tensor {tensor_id!r} is not registered with the"
                " gateway; REGISTER it first",
            )
        replayed = False
        with self._state:
            attempts = len(self._backends) + 2
        for _attempt in range(attempts):
            with self._state:
                owners = tuple(
                    self._ring.nodes_for(record.key, self.replication)
                )
                record.owners = owners or record.owners
                target = next(
                    (
                        name for name in owners
                        if self._backends[name].healthy
                    ),
                    None,
                )
            if target is None:
                raise ServiceError(
                    ErrorCode.INTERNAL, "no healthy backend shards"
                )
            try:
                reply_type, reply_header, reply_body = self._forward_to(
                    target, msg_type, header, body
                )
            except (OSError, ConnectionError):
                continue  # shard evicted; ring already rebalanced
            if (
                reply_type == MessageType.ERROR
                and reply_header.get("code") == ErrorCode.UNKNOWN_TENSOR.value
                and not replayed
            ):
                # The shard restarted (or evicted the session): replay
                # the registration we hold — plus the tensor's update
                # log, in epoch order — and retry once.
                replayed = True
                try:
                    self._replay_record(target, record)
                except (OSError, ConnectionError):
                    self._backend_down(target)
                continue
            if reply_type != MessageType.ERROR:
                self.metrics.incr("accepted")
            return Reply(reply_type, reply_header, reply_body)
        raise ServiceError(
            ErrorCode.INTERNAL,
            f"request could not be placed after {attempts} attempts",
        )

    def _forward_update(self, header: Dict, body: bytes) -> Reply:
        """Forward a rank-1 ``UPDATE`` to *every* owner of the tensor
        and retain the frame for replay.

        Unlike applies (pure reads, served by any owner), an update
        mutates session state, so the primary *and* the replicas must
        all apply it — otherwise a failover would silently rewind the
        tensor. The per-record lock serializes updates for one tensor,
        which is what makes "retained list order == epoch order" hold:
        frame k in the log produced epoch k on every shard that
        applied the stream. The primary's reply (with its echoed
        ``update_epoch``) is returned to the client; a replica that
        fails is evicted like any other outage and the rebalance
        replays the full log onto its successor."""
        tensor_id = header.get("tensor_id")
        if not isinstance(tensor_id, str) or not tensor_id:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "request needs a tensor_id string"
            )
        record = self._tensors.get(tensor_id)
        if record is None:
            raise ServiceError(
                ErrorCode.UNKNOWN_TENSOR,
                f"tensor {tensor_id!r} is not registered with the"
                " gateway; REGISTER it first",
            )
        with record.update_lock:
            replayed = False
            with self._state:
                attempts = len(self._backends) + 2
            for _attempt in range(attempts):
                with self._state:
                    owners = tuple(
                        self._ring.nodes_for(record.key, self.replication)
                    )
                    record.owners = owners or record.owners
                    healthy = [
                        name for name in owners
                        if self._backends[name].healthy
                    ]
                if not healthy:
                    raise ServiceError(
                        ErrorCode.INTERNAL, "no healthy backend shards"
                    )
                try:
                    reply_type, reply_header, reply_body = self._forward_to(
                        healthy[0], MessageType.UPDATE, header, body
                    )
                except (OSError, ConnectionError):
                    continue  # primary evicted; ring already rebalanced
                if (
                    reply_type == MessageType.ERROR
                    and reply_header.get("code")
                    == ErrorCode.UNKNOWN_TENSOR.value
                    and not replayed
                ):
                    # The shard restarted: replay registration plus the
                    # retained update log, then retry this update once.
                    replayed = True
                    try:
                        self._replay_record(healthy[0], record)
                    except (OSError, ConnectionError):
                        self._backend_down(healthy[0])
                    continue
                if reply_type == MessageType.ERROR:
                    return Reply(reply_type, reply_header, reply_body)
                # Primary applied it: the frame joins the log, then the
                # replicas apply it before the client sees the new
                # epoch. A replica that answers UNKNOWN_TENSOR
                # (restarted, or evicted the session) gets the full log
                # replayed instead — registration plus every update,
                # this one included.
                with self._state:
                    record.updates.append((dict(header), bytes(body)))
                for replica in healthy[1:]:
                    try:
                        r_type, r_header, _ = self._forward_to(
                            replica, MessageType.UPDATE, header, body
                        )
                        if (
                            r_type == MessageType.ERROR
                            and r_header.get("code")
                            == ErrorCode.UNKNOWN_TENSOR.value
                        ):
                            self._replay_record(replica, record)
                    except (OSError, ConnectionError):
                        self._backend_down(replica)
                self.metrics.incr("accepted")
                self.metrics.incr("updates")
                return Reply(reply_type, reply_header, reply_body)
            raise ServiceError(
                ErrorCode.INTERNAL,
                f"update could not be placed after {attempts} attempts",
            )

    # -- stats -----------------------------------------------------------------

    def _handle_stats(self, header: Optional[Dict] = None) -> Reply:
        fmt = (header or {}).get("format", "json")
        if fmt == "json":
            return Reply(MessageType.OK, self.stats())
        if fmt == "prometheus":
            text = prometheus_text(self.registry)
            return Reply(
                MessageType.OK,
                {"format": "prometheus"}, text.encode("utf-8"),
            )
        if fmt == "spans":
            # Spans live on the shards (the gateway runs no engine);
            # merge every healthy shard's buffer.
            trace_id = (header or {}).get("trace_id")
            shard_header: Dict = {"format": "spans"}
            if trace_id is not None:
                shard_header["trace_id"] = trace_id
            chunks: List[str] = []
            count = 0
            with self._state:
                backends = [
                    backend for backend in self._backends.values()
                    if backend.healthy
                ]
            for backend in backends:
                try:
                    _type, reply_header, reply_body = backend.roundtrip(
                        MessageType.STATS, shard_header
                    )
                except (OSError, ConnectionError):
                    self._backend_down(backend.name)
                    continue
                text = reply_body.decode("utf-8")
                if text:
                    chunks.append(text)
                count += int(reply_header.get("count", 0))
            return Reply(
                MessageType.OK,
                {"format": "spans", "count": count},
                "".join(chunks).encode("utf-8"),
            )
        raise ServiceError(
            ErrorCode.BAD_REQUEST,
            f"stats format must be json, prometheus, or spans;"
            f" got {fmt!r}",
        )

    def stats(self) -> Dict:
        """The gateway ``STATS`` payload: ring, shards, placements."""
        with self._state:
            shards = {
                backend.name: {
                    "host": backend.host,
                    "port": backend.port,
                    "healthy": backend.healthy,
                    "state": backend.state,
                    "requests": backend.requests,
                    "errors": backend.errors,
                    "inflight": self._inflight_by_shard.get(backend.name, 0),
                    "resident_tensors": sorted(
                        record.tensor_id
                        for record in self._tensors.values()
                        if backend.name in record.owners
                    ),
                }
                for backend in self._backends.values()
            }
            tensors = {
                record.tensor_id: {
                    "q": record.q,
                    "P": record.P,
                    "owners": list(record.owners),
                }
                for record in self._tensors.values()
            }
            ring = self._ring.describe()
            events = dict(self._events)
        return {
            "gateway": {
                "ring": ring,
                "shards": shards,
                "tensors": tensors,
                "events": events,
                "server": self.metrics.snapshot(),
            },
            "connections": self.connection_count(),
            "config": {
                "replication": self.replication,
                "executor_workers": self.executor_workers,
                "max_inflight": self.max_inflight,
                "backend_timeout_s": self.backend_timeout_s,
            },
        }

    # -- metrics collector ------------------------------------------------------

    def _collect_metrics(self) -> "list[MetricFamily]":
        with self._state:
            backends = list(self._backends.values())
            events = dict(self._events)
            tensors = list(self._tensors.values())
            ring_size = len(self._ring)
        families = [
            MetricFamily(
                "sttsv_ring_backends", "gauge",
                "Backend shards currently on the hash ring",
                [Sample(labels=(), value=float(ring_size))],
            ),
            MetricFamily(
                "sttsv_gateway_shard_state", "gauge",
                "Shard health (1 healthy, 0 down/drained)",
                [
                    Sample(
                        labels=(("shard", backend.name),),
                        value=1.0 if backend.healthy else 0.0,
                    )
                    for backend in backends
                ],
            ),
            MetricFamily(
                "sttsv_gateway_shard_requests_total", "counter",
                "Requests forwarded to each shard",
                [
                    Sample(
                        labels=(("shard", backend.name),),
                        value=float(backend.requests),
                    )
                    for backend in backends
                ],
            ),
            MetricFamily(
                "sttsv_gateway_resident_tensors", "gauge",
                "Tensors placed on each shard (primary or replica)",
                [
                    Sample(
                        labels=(("shard", backend.name),),
                        value=float(
                            sum(
                                1 for record in tensors
                                if backend.name in record.owners
                            )
                        ),
                    )
                    for backend in backends
                ],
            ),
            MetricFamily(
                "sttsv_gateway_events_total", "counter",
                "Gateway membership and rebalance events by kind",
                [
                    Sample(labels=(("event", name),), value=float(count))
                    for name, count in sorted(events.items())
                ],
            ),
        ]
        server = self.metrics.snapshot()
        families.append(
            MetricFamily(
                "sttsv_gateway_server_events_total", "counter",
                "Gateway admission and lifecycle events by kind",
                [
                    Sample(labels=(("event", name),), value=float(count))
                    for name, count in sorted(server.items())
                ],
            )
        )
        return families


# -- fleet process helpers ------------------------------------------------------


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (race-tolerant: bind-and-release)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _repro_env() -> Dict[str, str]:
    """Subprocess environment with this repro package importable."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


def spawn_shard(
    port: int,
    host: str = "127.0.0.1",
    extra_args: Sequence[str] = (),
    log_path: Optional[str] = None,
) -> subprocess.Popen:
    """Launch one shard server process (``python -m repro serve``)."""
    command = [
        sys.executable, "-m", "repro", "serve",
        "--host", host, "--port", str(port), *extra_args,
    ]
    if log_path is not None:
        log = open(log_path, "ab")  # noqa: SIM115 — owned by the child
    else:
        log = subprocess.DEVNULL
    process = subprocess.Popen(
        command,
        stdout=log,
        stderr=subprocess.STDOUT,
        env=_repro_env(),
    )
    if log_path is not None:
        log.close()  # the child holds its own descriptor
    return process


def wait_for_port(
    host: str, port: int, timeout: float = 30.0
) -> None:
    """Block until a TCP connect to ``host:port`` succeeds."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{host}:{port} did not accept within {timeout}s"
                ) from None
            time.sleep(0.05)


class LocalFleet:
    """N shard processes plus an in-process gateway, as one context.

    The harness behind ``repro serve --fleet N``, the chaos tests, and
    the fleet benchmark::

        with LocalFleet(shards=2) as fleet:
            host, port = fleet.gateway.address
            ... drive load; fleet.kill_shard(0); fleet.restart_shard(0)
    """

    def __init__(
        self,
        shards: int = 2,
        host: str = "127.0.0.1",
        gateway_port: int = 0,
        replication: int = DEFAULT_REPLICATION,
        shard_args: Sequence[str] = (),
        log_dir: Optional[str] = None,
        **gateway_kwargs,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._host = host
        self._count = shards
        self._gateway_port = gateway_port
        self._replication = replication
        self._shard_args = tuple(shard_args)
        self._log_dir = log_dir
        self._gateway_kwargs = gateway_kwargs
        self.ports: List[int] = []
        self.processes: List[Optional[subprocess.Popen]] = []
        self.gateway: Optional[STTSVGateway] = None

    def _shard_log(self, index: int) -> Optional[str]:
        if self._log_dir is None:
            return None
        return os.path.join(self._log_dir, f"shard-{index}.log")

    def shard_name(self, index: int) -> str:
        return f"{self._host}:{self.ports[index]}"

    def start(self) -> "LocalFleet":
        self.ports = [free_port(self._host) for _ in range(self._count)]
        self.processes = [
            spawn_shard(
                port,
                host=self._host,
                extra_args=self._shard_args,
                log_path=self._shard_log(index),
            )
            for index, port in enumerate(self.ports)
        ]
        for port in self.ports:
            wait_for_port(self._host, port)
        self.gateway = STTSVGateway(
            [(self._host, port) for port in self.ports],
            host=self._host,
            port=self._gateway_port,
            replication=self._replication,
            **self._gateway_kwargs,
        )
        self.gateway.start()
        return self

    def kill_shard(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Chaos: kill the shard process outright (default SIGKILL)."""
        process = self.processes[index]
        if process is None:
            return
        process.send_signal(sig)
        process.wait(timeout=10)
        self.processes[index] = None

    def restart_shard(self, index: int) -> None:
        """Respawn a killed shard on its original port and re-join it
        to the ring (tensors whose arcs it owned re-register onto it)."""
        if self.processes[index] is not None:
            self.kill_shard(index)
        port = self.ports[index]
        self.processes[index] = spawn_shard(
            port,
            host=self._host,
            extra_args=self._shard_args,
            log_path=self._shard_log(index),
        )
        wait_for_port(self._host, port)
        self.gateway.add_backend(
            (self._host, port), name=self.shard_name(index)
        )

    def stop(self) -> None:
        if self.gateway is not None:
            self.gateway.stop()
            self.gateway = None
        for index, process in enumerate(self.processes):
            if process is None:
                continue
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
            self.processes[index] = None

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
