"""Live serving metrics: latency percentiles, batch sizes, admission.

Three layers of observability meet here:

* per-request **service latencies** (arrival to reply-ready) kept in a
  bounded reservoir, summarized as p50/p95/p99;
* the micro-batcher's **batch-size histogram** — the direct evidence
  that concurrent requests actually coalesce (the integration tests
  assert on it);
* the machine layer's existing counters surfaced per session: PR 2's
  :class:`~repro.obs.instrument.Instrumentation` phase spans and
  PR 3's ledger ``retry_*`` recovery side-channel, fault-injection
  stats, and transport failover flag.

Everything is thread-safe (the server records from handler and batcher
threads concurrently) and snapshots to plain JSON-compatible dicts —
the payload of the ``STATS`` endpoint, rendered human-readable by
:func:`repro.reporting.trace.service_table`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

#: Latency reservoir size: enough for stable tail percentiles without
#: unbounded growth in a long-lived server.
DEFAULT_RESERVOIR = 8192


class LatencyRecorder:
    """Bounded reservoir of request latencies with percentile summary."""

    def __init__(self, maxlen: int = DEFAULT_RESERVOIR):
        self._samples: Deque[float] = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, float]:
        """``{count, mean_ms, p50_ms, p95_ms, p99_ms, max_ms}`` (zeros
        when nothing was recorded)."""
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._total
        if not samples:
            return {
                "count": 0,
                "mean_ms": 0.0,
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "max_ms": 0.0,
            }
        arr = np.asarray(samples)
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        return {
            "count": count,
            "mean_ms": total / count * 1e3,
            "p50_ms": float(p50) * 1e3,
            "p95_ms": float(p95) * 1e3,
            "p99_ms": float(p99) * 1e3,
            "max_ms": float(arr.max()) * 1e3,
        }


class BatchSizeHistogram:
    """Counts of executed batch widths: ``{size: batches}``."""

    def __init__(self):
        self._counts: Dict[int, int] = {}
        self._lock = threading.Lock()

    def record(self, size: int) -> None:
        with self._lock:
            self._counts[size] = self._counts.get(size, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly (string keys), sorted by batch size."""
        with self._lock:
            return {str(k): self._counts[k] for k in sorted(self._counts)}

    def max_size(self) -> int:
        with self._lock:
            return max(self._counts, default=0)

    def total_requests(self) -> int:
        """Requests served through batches (Σ size · count)."""
        with self._lock:
            return sum(k * v for k, v in self._counts.items())


class SessionMetrics:
    """Per-session serving counters (one per warm engine session)."""

    def __init__(self):
        self.latency = LatencyRecorder()
        self.batch_sizes = BatchSizeHistogram()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "requests": 0,
            "batch_requests": 0,
            "updates": 0,
            "errors": 0,
            "parallel_runs": 0,
            "comm_rounds": 0,
            "comm_words": 0,
            "retry_rounds": 0,
            "retry_words": 0,
            "retry_messages": 0,
            "fused_exchanges": 0,
            "messages_fused": 0,
            "messages_logical": 0,
        }

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def absorb_ledger(self, ledger) -> None:
        """Fold one parallel run's ledger into the running totals
        (the caller resets the ledger afterwards, so a long-lived
        session never accumulates per-round records)."""
        with self._lock:
            self._counters["parallel_runs"] += 1
            self._counters["comm_rounds"] += ledger.round_count()
            self._counters["comm_words"] += ledger.max_words_sent()
            self._counters["retry_rounds"] += ledger.retry_rounds
            self._counters["retry_words"] += ledger.retry_words
            self._counters["retry_messages"] += ledger.retry_messages
            self._counters["fused_exchanges"] += ledger.fused_rounds
            self._counters["messages_fused"] += ledger.fused_messages
            self._counters["messages_logical"] += ledger.fused_logical_messages

    def snapshot(self) -> Dict:
        with self._lock:
            counters = dict(self._counters)
        return {
            **counters,
            "latency": self.latency.snapshot(),
            "batch_size_histogram": self.batch_sizes.as_dict(),
        }


class ServerMetrics:
    """Server-wide admission and lifecycle counters."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "accepted": 0,
            "rejected_overload": 0,
            "deadline_exceeded": 0,
            "bad_requests": 0,
            "internal_errors": 0,
            "connections_opened": 0,
            "registrations": 0,
            "updates": 0,
        }

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def snapshot(
        self, queue_depth: Optional[Dict[str, int]] = None
    ) -> Dict:
        with self._lock:
            counters = dict(self._counters)
        if queue_depth is not None:
            counters["queue_depth"] = queue_depth
        return counters
