"""Consistent-hash ring for shard placement in the gateway tier.

The gateway places each registered tensor on backend shards by hashing
its routing key — ``tensor_id|q=..|P=..``, the same ``(tensor, q, P)``
parameterization the cost model prices — onto a ring of virtual nodes.
Consistent hashing is what makes membership changes cheap: when a
shard joins or leaves, only the keys whose arc it owned move (expected
``K/N`` of ``K`` keys across ``N`` shards), so a drain or a crash
re-registers a fraction of the resident tensors instead of reshuffling
the whole fleet.

Hashes are :func:`hashlib.blake2b` (8-byte digests), so placement is
stable across processes and Python invocations — a gateway restart
computes the same ring as the one before it, and a test can predict
where a tensor lands.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Virtual nodes per backend: enough for ±20-ish% load spread at small
#: fleet sizes without making membership changes slow.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """64-bit position of ``key`` on the ring (process-independent)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Sorted ring of virtual nodes mapping keys to backend names.

    Not thread-safe by itself — the gateway serializes membership
    changes and lookups under its own state lock.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: Sorted virtual-node positions and the parallel owner list.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: Dict[str, List[int]] = {}

    # -- membership ------------------------------------------------------------

    def add(self, node: str) -> None:
        """Add a backend's virtual nodes (idempotent)."""
        if node in self._nodes:
            return
        points = []
        for replica in range(self.vnodes):
            point = stable_hash(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # Collisions across distinct nodes are ~2^-64 per pair;
            # skip rather than silently shadow an existing owner.
            if (
                index < len(self._points)
                and self._points[index] == point
            ):
                continue
            self._points.insert(index, point)
            self._owners.insert(index, node)
            points.append(point)
        self._nodes[node] = points

    def remove(self, node: str, allow_empty: bool = False) -> None:
        """Remove a backend's virtual nodes (idempotent for nodes not
        on the ring).

        Removing the *last* member raises a typed
        :class:`~repro.errors.ConfigurationError` unless
        ``allow_empty=True``: an empty ring routes nothing, and a
        planned removal (a drain) should place a successor first. The
        gateway's crash path passes ``allow_empty=True`` — a dead last
        shard is a fact, not a configuration choice.
        """
        if (
            not allow_empty
            and node in self._nodes
            and len(self._nodes) == 1
        ):
            raise ConfigurationError(
                f"removing {node!r} would empty the ring; add a"
                " replacement backend first (or pass allow_empty=True"
                " to accept routing nothing)"
            )
        points = self._nodes.pop(node, None)
        if points is None:
            return
        for point in points:
            index = bisect.bisect_left(self._points, point)
            if (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] == node
            ):
                del self._points[index]
                del self._owners[index]

    def nodes(self) -> List[str]:
        """Current members, sorted by name."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup ----------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The backend owning ``key`` (None on an empty ring)."""
        owners = self.nodes_for(key, count=1)
        return owners[0] if owners else None

    def nodes_for(self, key: str, count: int) -> List[str]:
        """The first ``count`` *distinct* backends clockwise from
        ``key`` — position 0 is the primary, the rest are replica
        targets in failover order. Returns fewer when the ring has
        fewer members."""
        if not self._points or count < 1:
            return []
        start = bisect.bisect_right(self._points, stable_hash(key))
        owners: List[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == count:
                    break
        return owners

    # -- introspection ---------------------------------------------------------

    def describe(self) -> Dict:
        """Stats-endpoint view: members and virtual-node counts."""
        return {
            "nodes": self.nodes(),
            "vnodes_per_node": self.vnodes,
            "points": len(self._points),
        }

    def spread(self, keys: List[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns (balance diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts


def ring_key(tensor_id: str, q: int, P: int, order: int = 3) -> str:
    """Routing key of one registered tensor: the ``(tensor, q, P)``
    parameterization the paper's cost model prices.

    Order-3 keys keep their historical form (placement stability across
    upgrades); order-m tensors append an ``|order=`` component so the
    same tensor id registered at different orders lands independently.
    """
    key = f"{tensor_id}|q={q}|P={P}"
    if order != 3:
        key += f"|order={order}"
    return key


def placement_moves(
    before: Dict[str, Tuple[str, ...]], after: Dict[str, Tuple[str, ...]]
) -> int:
    """Count owner assignments that changed between two placements
    (``key -> owner tuple``) — the rebalance cost of a membership
    change."""
    moves = 0
    for key, owners in after.items():
        previous = before.get(key, ())
        moves += len(set(owners) - set(previous))
    return moves
