"""The paper's primary contribution: STTSV kernels, tetrahedral block
partitioning, the communication-optimal parallel algorithm, lower
bounds, and baselines."""

from repro.core.sttsv_sequential import (
    sttsv,
    sttsv_packed_bincount,
    sttsv_naive,
    sttsv_symmetric,
    sttsv_packed,
    sttsv_dense_reference,
    ttv_all_modes,
)
from repro.core.plans import (
    BlockedPlan,
    CacheInfo,
    ExchangePlan,
    LRUByteCache,
    SequentialPlan,
    cache_clear,
    cache_info,
    configure_cache,
    invalidate_plan,
    sequential_plan,
)
from repro.core.partition import TetrahedralPartition
from repro.core.partition_ndim import (
    QuadruplePartition,
    greedy_partial_permutation_rounds,
)
from repro.core.parallel_sttsv import ParallelSTTSV, CommBackend
from repro.core.parallel_sttsv_ndim import ParallelSTTSVm
from repro.core.sttsm import (
    sttsm,
    sttsm_dense_reference,
    sttsm_ndpacked,
    sttsv_bcss,
)
from repro.core.sttsv_ndim import (
    sttsv_ndim,
    sttsv_ndim_dense_reference,
    sttsv_ndim_lower_bound,
    sttsv_ndim_scalar,
)
from repro.core.bounds import (
    sttsv_lower_bound,
    minimal_access_solution,
    optimal_bandwidth_cost,
    all_to_all_bandwidth_cost,
    computation_cost_leading,
    schedule_step_count,
)
from repro.core.schedule import ExchangeSchedule, build_exchange_schedule
from repro.core.sttsv_blocked import sttsv_blocked
from repro.core.verification import RunVerdict, verify_sttsv_run
from repro.core.sparse_parallel import SparseParallelSTTSV
from repro.core.serialization import save_partition, load_partition
from repro.core.baselines import (
    sequence_baseline_sttsv,
    grid_baseline_sttsv,
)

__all__ = [
    "sttsv",
    "ttv_all_modes",
    "BlockedPlan",
    "QuadruplePartition",
    "greedy_partial_permutation_rounds",
    "ParallelSTTSVm",
    "sttsm",
    "sttsm_dense_reference",
    "sttsm_ndpacked",
    "sttsv_bcss",
    "sttsv_ndim",
    "sttsv_ndim_dense_reference",
    "sttsv_ndim_lower_bound",
    "sttsv_ndim_scalar",
    "SequentialPlan",
    "ExchangePlan",
    "LRUByteCache",
    "CacheInfo",
    "sequential_plan",
    "invalidate_plan",
    "cache_clear",
    "cache_info",
    "configure_cache",
    "sttsv_packed_bincount",
    "sttsv_blocked",
    "RunVerdict",
    "verify_sttsv_run",
    "SparseParallelSTTSV",
    "save_partition",
    "load_partition",
    "sttsv_naive",
    "sttsv_symmetric",
    "sttsv_packed",
    "sttsv_dense_reference",
    "TetrahedralPartition",
    "ParallelSTTSV",
    "CommBackend",
    "sttsv_lower_bound",
    "minimal_access_solution",
    "optimal_bandwidth_cost",
    "all_to_all_bandwidth_cost",
    "computation_cost_leading",
    "schedule_step_count",
    "ExchangeSchedule",
    "build_exchange_schedule",
    "sequence_baseline_sttsv",
    "grid_baseline_sttsv",
]
