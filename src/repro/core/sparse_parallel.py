"""Parallel STTSV for sparse symmetric tensors.

The tetrahedral partition's owner-compute rule is storage-agnostic:
entry ``(i, j, k)`` belongs to block ``(i//b, j//b, k//b)`` and that
block's owner, regardless of how entries are stored. For hypergraph
adjacency tensors (the Shivakumar et al. workload the paper cites) the
per-processor blocks are sparse, so this variant keeps each processor's
share as canonical COO entries and computes locally with the
O(local-nnz) scatter kernel. **Communication is identical to the dense
Algorithm 5** — only vector shards ever cross the network — so the
optimal word counts carry over unchanged; what changes is local memory
(O(nnz/P) instead of O(n³/6P)) and local work. The exchange phases are
inherited from :class:`~repro.core.parallel_sttsv.ParallelSTTSV`, so
they run over whatever transport the :class:`Machine` was built with
(in-process simulation or shared-memory workers) with identical ledger
counts.

Load balance caveat: the paper's load-balance analysis assumes dense
blocks (uniform entry counts); a skewed hypergraph can concentrate
nonzeros on few processors. :meth:`SparseParallelSTTSV.load_balance`
reports the realized distribution.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import distribution as dist
from repro.core.parallel_sttsv import ParallelSTTSV
from repro.errors import ConfigurationError, MachineError
from repro.machine.machine import Machine
from repro.tensor.multiplicity import contribution_weights
from repro.tensor.sparse import SparseSymmetricTensor


class SparseParallelSTTSV(ParallelSTTSV):
    """Algorithm 5 with sparse per-processor tensor storage.

    Same constructor, schedule, exchange phases, and cost accounting as
    :class:`~repro.core.parallel_sttsv.ParallelSTTSV`; only data loading
    and the local kernel differ.
    """

    # The overlap pipeline needs dense per-block storage to advance
    # compute block-by-block; the sparse kernel is one pass over local
    # entries, so this variant runs phased (exchanges still fuse at the
    # collectives layer).
    _pipeline_capable = False

    def load(
        self, machine: Machine, tensor: SparseSymmetricTensor, x: np.ndarray
    ) -> None:
        """Distribute canonical nonzeros by block ownership + x shards."""
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )
        if tensor.n != self.n:
            raise ConfigurationError(
                f"tensor dimension {tensor.n} != configured {self.n}"
            )
        x_padded = dist.pad_vector(np.asarray(x, dtype=np.float64), self.n_padded)
        shards = dist.initial_shards(self.partition, x_padded, self.b)
        owner = self.partition.owner_of_block()
        b = self.b
        per_processor: List[List[int]] = [[] for _ in range(machine.P)]
        block_rows = tensor.indices // b  # canonical entry -> canonical block
        for position in range(tensor.nnz):
            block = tuple(int(v) for v in block_rows[position])
            per_processor[owner[block]].append(position)
        for p in range(machine.P):
            positions = np.asarray(per_processor[p], dtype=np.int64)
            machine[p].store(
                "sparse_entries",
                (
                    tensor.indices[positions].copy()
                    if positions.size
                    else np.empty((0, 3), dtype=np.int64),
                    tensor.values[positions].copy()
                    if positions.size
                    else np.empty(0),
                ),
            )
            machine[p].store("x_shards", shards[p])

    def _compute_processor(self, machine: Machine, p: int) -> None:
        """Sparse phase-2 work of one simulated processor.

        Overriding the per-processor hook (rather than the phase
        driver) means the base class's opt-in thread pool applies to
        the sparse variant unchanged.
        """
        proc = machine[p]
        x_full: Dict[int, np.ndarray] = proc.load("x_full")
        indices, values = proc.load("sparse_entries")
        # Assemble a local view of x over the padded index space;
        # only rows in R_p are populated — exactly the data the
        # exchange phase delivered (ownership guarantees every
        # local entry's indices fall inside R_p's row blocks).
        local_x = np.zeros(self.n_padded)
        for i, row in x_full.items():
            local_x[i * self.b : (i + 1) * self.b] = row
        local_y = np.zeros(self.n_padded)
        if values.size:
            I, J, K = indices[:, 0], indices[:, 1], indices[:, 2]
            w_i, w_j, w_k = contribution_weights(I, J, K)
            local_y += np.bincount(
                I,
                weights=w_i * values * local_x[J] * local_x[K],
                minlength=self.n_padded,
            )
            local_y += np.bincount(
                J,
                weights=w_j * values * local_x[I] * local_x[K],
                minlength=self.n_padded,
            )
            local_y += np.bincount(
                K,
                weights=w_k * values * local_x[I] * local_x[J],
                minlength=self.n_padded,
            )
        y_partial = {
            i: local_y[i * self.b : (i + 1) * self.b].copy()
            for i in self.partition.R[p]
        }
        proc.store("y_partial", y_partial)

    def load_balance(self, machine: Machine) -> Dict[str, float]:
        """Realized nonzero distribution across processors."""
        counts = [
            machine[p].load("sparse_entries")[1].size for p in range(machine.P)
        ]
        total = sum(counts)
        return {
            "total_nnz": float(total),
            "max_nnz": float(max(counts)),
            "mean_nnz": total / machine.P,
            "imbalance": (max(counts) / (total / machine.P)) if total else 1.0,
        }
