"""Point-to-point exchange schedules (paper §7.2.2, Appendix A, Figure 1).

Two processors must exchange data iff their index sets overlap:
``R_p ∩ R_{p'} ≠ ∅``. By the Steiner property an intersection has size
at most 2 (three shared indices would mean two distinct blocks covering
one triple). The exchange graph is regular — its degree depends only on
the design's replication numbers:

* neighbors sharing 2 row blocks: ``C(r,2) · (λ₂ - 1)`` where
  ``λ₂ = (m-2)/(r-2)`` (Lemma 6.3);
* incidences: ``r · (λ₁ - 1)`` with ``λ₁ = (m-1)(m-2)/((r-1)(r-2))``
  (Lemma 6.4); neighbors sharing exactly 1 block make up the rest.

For the spherical family this gives ``q²(q+1)/2`` two-block neighbors
and ``q² - 1`` one-block neighbors — ``q³/2 + 3q²/2 - 1`` steps total
(§7.2.2). For the paper's SQS(8) example every processor has exactly 12
two-block neighbors and the schedule has 12 < P - 1 = 13 steps
(Figure 1).

Each step is a permutation: every processor sends one message and
receives one message (Theorem 7.2), obtained by decomposing the
d-regular exchange digraph into ``d`` permutations (Lemma 7.1 /
:func:`repro.matching.edge_coloring.permutation_rounds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.partition import TetrahedralPartition
from repro.errors import PartitionError
from repro.matching.edge_coloring import permutation_rounds


@dataclass(frozen=True)
class ExchangeDegrees:
    """Analytic neighbor counts of the exchange graph."""

    two_block: int
    one_block: int

    @property
    def total(self) -> int:
        """Schedule length ``d`` — one synchronous step per neighbor."""
        return self.two_block + self.one_block


def exchange_degrees(partition: TetrahedralPartition) -> ExchangeDegrees:
    """Closed-form neighbor counts from the design's replication numbers."""
    r = partition.r
    lambda_pair = partition.steiner.pair_replication()
    lambda_point = partition.steiner.point_replication()
    two_block = r * (r - 1) // 2 * (lambda_pair - 1)
    incidences = r * (lambda_point - 1)
    one_block = incidences - 2 * two_block
    if one_block < 0:
        raise PartitionError("negative one-block neighbor count (internal)")
    return ExchangeDegrees(two_block=two_block, one_block=one_block)


@dataclass
class ExchangeSchedule:
    """A complete point-to-point schedule for one exchange phase.

    Attributes
    ----------
    shared:
        ``shared[(p, p')]`` — the row blocks the ordered pair exchanges
        (symmetric: same set for both orders).
    rounds:
        Permutation rounds (sender -> receiver); executing all rounds
        delivers exactly one message per ordered neighbor pair.
    degrees:
        The analytic :class:`ExchangeDegrees` (verified against the
        realized graph at construction).
    """

    shared: Dict[Tuple[int, int], FrozenSet[int]]
    rounds: List[Dict[int, int]]
    degrees: ExchangeDegrees

    @property
    def step_count(self) -> int:
        """Number of synchronous steps (== exchange-graph degree)."""
        return len(self.rounds)

    def neighbors_of(self, p: int) -> List[int]:
        """Sorted neighbor list of processor ``p``."""
        return sorted(dst for (src, dst) in self.shared if src == p)


def build_exchange_schedule(partition: TetrahedralPartition) -> ExchangeSchedule:
    """Construct the §7.2.2 schedule for ``partition``.

    Builds the exchange digraph (one directed edge per ordered neighbor
    pair), verifies its regularity against the closed-form degree, and
    decomposes it into permutation rounds.
    """
    P = partition.P
    shared: Dict[Tuple[int, int], FrozenSet[int]] = {}
    exchanges: List[Tuple[int, int]] = []
    members = [frozenset(row) for row in partition.R]
    for p in range(P):
        for p_other in range(P):
            if p_other == p:
                continue
            common = members[p] & members[p_other]
            if common:
                if len(common) > 2:
                    raise PartitionError(
                        f"processors {p}, {p_other} share {len(common)} row"
                        f" blocks; Steiner property violated"
                    )
                shared[(p, p_other)] = common
                exchanges.append((p, p_other))

    degrees = exchange_degrees(partition)
    realized = [0] * P
    for src, _ in exchanges:
        realized[src] += 1
    if any(deg != degrees.total for deg in realized):
        raise PartitionError(
            f"exchange graph degrees {sorted(set(realized))} do not match"
            f" analytic degree {degrees.total}"
        )

    rounds = permutation_rounds(P, exchanges)
    return ExchangeSchedule(shared=shared, rounds=rounds, degrees=degrees)
