"""Parallel STTSV — the paper's Algorithm 5.

Phases (function ``STTSV`` of the paper):

1. **Gather x** (lines 10–21): every processor ``p`` exchanges vector
   shards with the other members of ``Q_i`` for each ``i ∈ R_p`` so it
   ends with the complete row blocks ``x[i]``.
2. **Local compute** (lines 23–36): per-block ternary kernels from
   :mod:`repro.core.block_kernels` accumulate partial row blocks
   ``ŷ[i]`` for ``i ∈ R_p``.
3. **Scatter-reduce y** (lines 38–50): each processor sends, to every
   other member ``p' ∈ Q_i``, the slice of its partial ``ŷ[i]``
   covering ``p'``'s shard, and sums what it receives into its own
   final shard ``y[i]^{(p)}``.

All data movement goes through the machine's pluggable transport
(:mod:`repro.machine.transport`): construct the :class:`Machine` with a
:class:`~repro.machine.transport.shm.SharedMemoryTransport` to execute
both exchange phases across ``multiprocessing`` workers over shared
memory. Ledger accounting is schedule-derived and therefore identical
under every transport.

Two communication backends:

* ``CommBackend.POINT_TO_POINT`` — the §7.2.2 schedule: messages only
  between processors with overlapping ``R`` sets, packed one message
  per neighbor, executed in ``q³/2 + 3q²/2 − 1`` permutation steps.
  Per-processor bandwidth is exactly ``n(q+1)/(q²+1) − n/P`` per vector
  — the lower bound's leading term.
* ``CommBackend.ALL_TO_ALL`` — the paper's All-to-All formulation
  (lines 16/44): a uniform personalized collective in which every
  processor ships two shard-slots to *every* other processor (padding
  with zeros where less is needed, exactly the uniform-buffer model the
  paper prices). Per-processor bandwidth is ``2n/(q+1) · (1 − 1/P)``
  per vector — twice the lower bound's leading term (§7.2.2).
"""

from __future__ import annotations

import contextvars
import enum
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import distribution as dist
from repro.core.block_kernels import apply_block
from repro.core.partition import TetrahedralPartition
from repro.core.plans import ExchangePlan
from repro.core.schedule import ExchangeSchedule, build_exchange_schedule
from repro.errors import ConfigurationError, MachineError
from repro.machine.collectives import (
    all_to_all,
    execute_rounds_fused,
    point_to_point_rounds,
    schedule_point_to_point,
)
from repro.machine.machine import Machine
from repro.tensor.blocks import extract_block
from repro.tensor.packed import PackedSymmetricTensor

#: Chunks the overlap pipeline splits each exchange phase into. Each
#: chunk is one fused physical exchange; while chunk ``c+1`` moves in a
#: background thread, the main thread scatters chunk ``c``'s deliveries
#: and runs every tensor-block kernel whose row blocks are complete.
#: More chunks → finer overlap but more per-exchange latency; 4 keeps
#: the fused message count within ~4× of the single-batch optimum.
PIPELINE_CHUNKS = 4


def _chunk_bounds(n_rounds: int, n_chunks: int = PIPELINE_CHUNKS) -> List[Tuple[int, int]]:
    """Split ``range(n_rounds)`` into up to ``n_chunks`` contiguous,
    near-equal ``(lo, hi)`` index ranges."""
    n_chunks = min(n_rounds, n_chunks)
    if n_chunks <= 0:
        return []
    base, extra = divmod(n_rounds, n_chunks)
    bounds = []
    lo = 0
    for chunk in range(n_chunks):
        hi = lo + base + (1 if chunk < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class CommBackend(enum.Enum):
    """Communication realization of Algorithm 5's two exchange phases."""

    POINT_TO_POINT = "point-to-point"
    ALL_TO_ALL = "all-to-all"


def pad_tensor(tensor: PackedSymmetricTensor, n_padded: int) -> PackedSymmetricTensor:
    """Embed a packed tensor into a larger zero-padded one (§6.1).

    Padded entries are zero, so STTSV on the padded problem restricted
    to the first ``n`` outputs equals the original STTSV.
    """
    n = tensor.n
    if n_padded < n:
        raise ConfigurationError(f"cannot pad {n} down to {n_padded}")
    if n_padded == n:
        return tensor
    I, J, K = PackedSymmetricTensor.index_arrays(n_padded)
    mask = I < n  # I >= J >= K, so I < n implies the whole triple fits
    old_offsets = (
        I[mask] * (I[mask] + 1) * (I[mask] + 2) // 6
        + J[mask] * (J[mask] + 1) // 2
        + K[mask]
    )
    data = np.zeros(I.size)
    data[mask] = tensor.data[old_offsets]
    return PackedSymmetricTensor(n_padded, data)


class ParallelSTTSV:
    """Executable Algorithm 5 on a simulated machine.

    Parameters
    ----------
    partition:
        The tetrahedral block partition (one Steiner block per
        processor).
    n:
        Original tensor dimension. The instance computes the padded
        dimension ``n' = m · b`` with ``b`` the smallest multiple of
        the shard replication that makes ``n' >= n``.
    backend:
        Communication realization (see :class:`CommBackend`).
    local_threads:
        When > 1, phase 2 dispatches the per-processor block kernels to
        a thread pool of that many workers (capped at ``P``). The
        simulated processors are independent in phase 2, so results are
        bitwise identical to the serial path (tested); NumPy's
        einsum/BLAS kernels release the GIL, so real speedup is
        available for large blocks. Default ``None`` keeps the serial
        loop.

    Examples
    --------
    >>> from repro.steiner import spherical_steiner_system
    >>> from repro.tensor.dense import random_symmetric
    >>> part = TetrahedralPartition(spherical_steiner_system(2))
    >>> algo = ParallelSTTSV(part, n=30)
    >>> (algo.b, algo.n_padded)
    (6, 30)
    """

    #: Whether :meth:`run` may use the fused overlap pipeline. The
    #: pipeline advances phase-2 compute block-by-block as exchanged
    #: row blocks arrive, which requires the dense per-block storage of
    #: this class; subclasses with different local storage/kernels
    #: (:class:`~repro.core.sparse_parallel.SparseParallelSTTSV`) turn
    #: it off and take the phased path — still fused at the
    #: collectives layer, just not overlapped.
    _pipeline_capable = True

    def __init__(
        self,
        partition: TetrahedralPartition,
        n: int,
        backend: CommBackend = CommBackend.POINT_TO_POINT,
        local_threads: Optional[int] = None,
    ):
        if local_threads is not None and local_threads < 1:
            raise ConfigurationError(
                f"local_threads must be >= 1, got {local_threads}"
            )
        self.partition = partition
        self.backend = backend
        self.n = n
        self.local_threads = local_threads
        replication = partition.steiner.point_replication()
        m = partition.m
        per_row = -(-n // m)  # ceil(n / m): minimal row-block size
        self.b = replication * (-(-per_row // replication))
        self.n_padded = m * self.b
        self.shard = partition.shard_size(self.b)
        self.schedule: ExchangeSchedule = build_exchange_schedule(partition)
        # Compiled once per instance: flat gather/scatter index arrays
        # and reusable buffers for both exchange phases (same payload
        # contents/sizes as the direct dict-walking formulation).
        self.exchange_plan = ExchangePlan(partition, self.schedule, self.b)

    # -- data loading -----------------------------------------------------------

    def load(
        self, machine: Machine, tensor: PackedSymmetricTensor, x: np.ndarray
    ) -> None:
        """Place tensor blocks and x shards in processor memories.

        Mirrors the algorithm's preconditions: processor ``p`` holds its
        extended tetrahedral block ``A[T_p]`` and its vector shards
        ``x[R_p]^{(p)}`` — nothing else. Loading is an out-of-model
        setup step (the paper's algorithms start from this state) and
        records no communication.

        Split into :meth:`load_tensor` + :meth:`load_vector` so callers
        serving many vectors against one resident tensor (iterative
        drivers, the :mod:`repro.service` layer) pay block extraction
        once and only redistribute shards per request.
        """
        self.load_tensor(machine, tensor)
        self.load_vector(machine, x)

    def load_tensor(
        self, machine: Machine, tensor: PackedSymmetricTensor
    ) -> None:
        """Place the padded tensor blocks in processor memories (the
        expensive, ``x``-independent half of :meth:`load`)."""
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )
        if tensor.n != self.n:
            raise ConfigurationError(
                f"tensor dimension {tensor.n} != configured {self.n}"
            )
        padded = pad_tensor(tensor, self.n_padded)
        for p in range(machine.P):
            blocks = {
                index: extract_block(padded, index, self.b)
                for index in self.partition.owned_blocks(p)
            }
            machine[p].store("tensor_blocks", blocks)

    def load_vector(self, machine: Machine, x: np.ndarray) -> None:
        """Distribute the vector shards ``x[R_p]^{(p)}`` (the cheap,
        per-request half of :meth:`load`; tensor blocks stay resident)."""
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"vector must have shape ({self.n},), got {x.shape}"
            )
        x_padded = dist.pad_vector(x, self.n_padded)
        shards = dist.initial_shards(self.partition, x_padded, self.b)
        for p in range(machine.P):
            machine[p].store("x_shards", shards[p])

    # -- payload builders ----------------------------------------------------------

    def _x_payload(self, machine: Machine, src: int, dst: int) -> Optional[np.ndarray]:
        """Compiled x-phase payload (requires staged ``x_shards``)."""
        return self.exchange_plan.x_payload(src, dst)

    def _y_payload(self, machine: Machine, src: int, dst: int) -> Optional[np.ndarray]:
        """Compiled y-phase payload (requires staged ``y_partial``)."""
        return self.exchange_plan.y_payload(src, dst)

    def _pad_uniform(self, payload: Optional[np.ndarray]) -> np.ndarray:
        """Pad a payload to the uniform 2-shard slot of the All-to-All
        model (pairs share at most two row blocks)."""
        slot = 2 * self.shard
        out = np.zeros(slot)
        if payload is not None:
            out[: payload.size] = payload
        return out

    # -- phase 1: gather x -------------------------------------------------------------

    def _exchange_x(self, machine: Machine) -> None:
        P = machine.P
        plan = self.exchange_plan
        for p in range(P):
            plan.stage_x(p, machine[p].load("x_shards"))
        if self.backend is CommBackend.POINT_TO_POINT:
            received = point_to_point_rounds(
                machine,
                self.schedule.rounds,
                lambda src, dst: self._x_payload(machine, src, dst),
                tag="x-exchange",
            )
        else:
            sendbufs = [
                {
                    dst: self._pad_uniform(self._x_payload(machine, src, dst))
                    for dst in range(P)
                    if dst != src
                }
                for src in range(P)
            ]
            received = all_to_all(machine, sendbufs, tag="x-exchange")
        for p in range(P):
            machine[p].store("x_full", plan.unpack_x(p, received[p]))

    # -- phase 2: local compute ----------------------------------------------------------

    def _compute_processor(self, machine: Machine, p: int) -> None:
        """Phase-2 work of one simulated processor (thread-safe: touches
        only processor ``p``'s memory)."""
        proc = machine[p]
        x_full = proc.load("x_full")
        blocks = proc.load("tensor_blocks")
        y_partial: Dict[int, np.ndarray] = {
            i: np.zeros(self.b) for i in self.partition.R[p]
        }
        for index, block in blocks.items():
            apply_block(index, block, x_full, y_partial)
        proc.store("y_partial", y_partial)

    def _local_compute(self, machine: Machine) -> None:
        threads = self.local_threads
        if threads is not None and threads > 1 and machine.P > 1:
            with ThreadPoolExecutor(
                max_workers=min(threads, machine.P)
            ) as pool:
                # list() re-raises any worker exception.
                list(
                    pool.map(
                        lambda p: self._compute_processor(machine, p),
                        range(machine.P),
                    )
                )
        else:
            for p in range(machine.P):
                self._compute_processor(machine, p)

    # -- phase 3: scatter-reduce y ----------------------------------------------------------

    def _exchange_y(self, machine: Machine) -> None:
        P = machine.P
        plan = self.exchange_plan
        for p in range(P):
            plan.stage_y(p, machine[p].load("y_partial"))
        if self.backend is CommBackend.POINT_TO_POINT:
            received = point_to_point_rounds(
                machine,
                self.schedule.rounds,
                lambda src, dst: self._y_payload(machine, src, dst),
                tag="y-exchange",
            )
        else:
            sendbufs = [
                {
                    dst: self._pad_uniform(self._y_payload(machine, src, dst))
                    for dst in range(P)
                    if dst != src
                }
                for src in range(P)
            ]
            received = all_to_all(machine, sendbufs, tag="y-exchange")
        for p in range(P):
            machine[p].store("y_shards", plan.reduce_y(p, received[p]))

    # -- overlap pipeline ----------------------------------------------------------------------

    def _compute_order(self, p: int) -> List[Tuple[Tuple[int, int, int], int]]:
        """Processor ``p``'s tensor blocks in their canonical compute
        order, each with the x-exchange round after which it is
        computable (all three row blocks complete)."""
        ready = self.exchange_plan.x_ready_round[p]
        return [
            (index, max(ready[index[0]], ready[index[1]], ready[index[2]]))
            for index in self.partition.owned_blocks(p)
        ]

    def _advance_compute(
        self,
        cursors: List[int],
        queues: List[List[Tuple[Tuple[int, int, int], int]]],
        blocks: List[Dict[Tuple[int, int, int], np.ndarray]],
        x_views: List[Dict[int, np.ndarray]],
        y_partial: List[Dict[int, np.ndarray]],
        completed_round: int,
    ) -> None:
        """Run every not-yet-computed tensor block whose inputs arrived.

        Blocks advance strictly in their canonical per-processor order
        (a prefix cursor), never by readiness alone — the accumulation
        order into ``y_partial`` is what makes the pipelined result
        bitwise identical to the phased one.
        """
        for p, queue in enumerate(queues):
            cursor = cursors[p]
            while cursor < len(queue) and queue[cursor][1] <= completed_round:
                index = queue[cursor][0]
                apply_block(index, blocks[p][index], x_views[p], y_partial[p])
                cursor += 1
            cursors[p] = cursor

    def _run_pipelined(self, machine: Machine) -> None:
        """Fused, overlapped execution of the three phases (DESIGN.md §11).

        Each exchange phase's permutation rounds are split into
        :data:`PIPELINE_CHUNKS` contiguous chunks, each executed as one
        fused physical exchange on a single background thread (chunks
        stay strictly ordered, so ledger pricing — labels, counts,
        round order — is identical to unfused execution). While chunk
        ``c+1`` is in flight the main thread scatters chunk ``c``'s
        deliveries and advances phase-2 compute over the tensor blocks
        whose row blocks are complete; the ``sttsv:local-compute`` span
        then covers only the compute remainder. The y phase overlaps
        the reduction of chunk ``c`` with the exchange of ``c+1``.
        Deliveries, compute order, and float accumulation order all
        match the phased path write-for-write, so results are bitwise
        identical (tested).
        """
        P = machine.P
        plan = self.exchange_plan
        bounds = _chunk_bounds(len(self.schedule.rounds))
        queues = [self._compute_order(p) for p in range(P)]
        cursors = [0] * P
        blocks = [machine[p].load("tensor_blocks") for p in range(P)]
        y_partial: List[Dict[int, np.ndarray]] = [
            {i: np.zeros(self.b) for i in self.partition.R[p]}
            for p in range(P)
        ]

        with machine.instrument.span("sttsv:exchange-x"):
            for p in range(P):
                plan.stage_x(p, machine[p].load("x_shards"))
            labeled = schedule_point_to_point(
                self.schedule.rounds,
                lambda src, dst: self._x_payload(machine, src, dst),
                tag="x-exchange",
            )
            for p in range(P):
                plan.seed_x(p)
            x_views = [plan.x_block_views(p) for p in range(P)]
            with ThreadPoolExecutor(max_workers=1) as pool:
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        execute_rounds_fused,
                        machine,
                        labeled[lo:hi],
                        "x-exchange",
                    )
                    for lo, hi in bounds
                ]
                for (lo, hi), future in zip(bounds, futures):
                    for (_, transfers), delivered in zip(
                        labeled[lo:hi], future.result()
                    ):
                        for transfer, payload in zip(transfers, delivered):
                            plan.scatter_x(
                                transfer.dest, transfer.source, payload
                            )
                    self._advance_compute(
                        cursors, queues, blocks, x_views, y_partial, hi - 1
                    )
            for p in range(P):
                machine[p].store("x_full", x_views[p])

        with machine.instrument.span("sttsv:local-compute"):
            self._advance_compute(
                cursors,
                queues,
                blocks,
                x_views,
                y_partial,
                len(self.schedule.rounds) - 1,
            )
            for p in range(P):
                machine[p].store("y_partial", y_partial[p])

        with machine.instrument.span("sttsv:exchange-y"):
            for p in range(P):
                plan.stage_y(p, y_partial[p])
            labeled_y = schedule_point_to_point(
                self.schedule.rounds,
                lambda src, dst: self._y_payload(machine, src, dst),
                tag="y-exchange",
            )
            for p in range(P):
                plan.seed_y(p)
            with ThreadPoolExecutor(max_workers=1) as pool:
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        execute_rounds_fused,
                        machine,
                        labeled_y[lo:hi],
                        "y-exchange",
                    )
                    for lo, hi in bounds
                ]
                for (lo, hi), future in zip(bounds, futures):
                    for (_, transfers), delivered in zip(
                        labeled_y[lo:hi], future.result()
                    ):
                        for transfer, payload in zip(transfers, delivered):
                            plan.accumulate_y(
                                transfer.dest, transfer.source, payload
                            )
            for p in range(P):
                machine[p].store("y_shards", plan.finish_y(p))

    # -- driver --------------------------------------------------------------------------------

    def run(self, machine: Machine) -> None:
        """Execute all three phases; results stay distributed as
        ``y_shards`` in each processor's memory.

        Each phase is wrapped in an instrumentation span (nested under
        one ``sttsv:run`` parent), so traces and the backend benchmarks
        can attribute wall-clock time to gather / compute / reduce
        regardless of which transport moves the bytes — and, when the
        process-wide tracer is enabled, each phase and every
        communication round it executes is stamped with the trace ids
        of the request (or CLI run) that caused it.

        With the point-to-point backend on a fusion-enabled machine
        (the defaults), execution goes through the fused overlap
        pipeline (:meth:`_run_pipelined`): the ``sttsv:exchange-x``
        span then also covers the portion of phase-2 compute that
        overlapped the exchange, and ``sttsv:local-compute`` covers the
        remainder. Results and ledger are bitwise identical to the
        phased path.
        """
        with machine.instrument.span("sttsv:run"):
            if (
                self._pipeline_capable
                and self.backend is CommBackend.POINT_TO_POINT
                and machine.fusion
                and (self.local_threads is None or self.local_threads <= 1)
            ):
                self._run_pipelined(machine)
                return
            with machine.instrument.span("sttsv:exchange-x"):
                self._exchange_x(machine)
            with machine.instrument.span("sttsv:local-compute"):
                self._local_compute(machine)
            with machine.instrument.span("sttsv:exchange-y"):
                self._exchange_y(machine)

    def gather_result(self, machine: Machine) -> np.ndarray:
        """Reassemble the distributed ``y`` (verification step, outside
        the communication model — the algorithm's contract ends with
        ``y`` distributed exactly like ``x`` was)."""
        shards = [machine[p].load("y_shards") for p in range(machine.P)]
        return dist.assemble_vector(
            self.partition, shards, self.b, original_length=self.n
        )

    # -- accounting ---------------------------------------------------------------------------

    def expected_words_per_processor(self) -> int:
        """Closed-form per-processor send volume over both phases.

        Point-to-point: ``2 · r · (λ₁ − 1) · shard`` — equals
        ``2 (n(q+1)/(q²+1) − n/P)`` for the spherical family (§7.2.2).
        All-to-All: ``2 · (P − 1) · 2 · shard`` — equals
        ``4n/(q+1) (1 − 1/P)``.
        """
        if self.backend is CommBackend.POINT_TO_POINT:
            lambda_point = self.partition.steiner.point_replication()
            per_phase = self.partition.r * (lambda_point - 1) * self.shard
        else:
            per_phase = (self.partition.P - 1) * 2 * self.shard
        return 2 * per_phase

    def flops_per_processor(self, p: int) -> int:
        """Ternary multiplications processor ``p`` performs (§7.1)."""
        return self.partition.ternary_multiplications(p, self.b)
