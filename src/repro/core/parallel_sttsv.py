"""Parallel STTSV — the paper's Algorithm 5.

Phases (function ``STTSV`` of the paper):

1. **Gather x** (lines 10–21): every processor ``p`` exchanges vector
   shards with the other members of ``Q_i`` for each ``i ∈ R_p`` so it
   ends with the complete row blocks ``x[i]``.
2. **Local compute** (lines 23–36): per-block ternary kernels from
   :mod:`repro.core.block_kernels` accumulate partial row blocks
   ``ŷ[i]`` for ``i ∈ R_p``.
3. **Scatter-reduce y** (lines 38–50): each processor sends, to every
   other member ``p' ∈ Q_i``, the slice of its partial ``ŷ[i]``
   covering ``p'``'s shard, and sums what it receives into its own
   final shard ``y[i]^{(p)}``.

All data movement goes through the machine's pluggable transport
(:mod:`repro.machine.transport`): construct the :class:`Machine` with a
:class:`~repro.machine.transport.shm.SharedMemoryTransport` to execute
both exchange phases across ``multiprocessing`` workers over shared
memory. Ledger accounting is schedule-derived and therefore identical
under every transport.

Two communication backends:

* ``CommBackend.POINT_TO_POINT`` — the §7.2.2 schedule: messages only
  between processors with overlapping ``R`` sets, packed one message
  per neighbor, executed in ``q³/2 + 3q²/2 − 1`` permutation steps.
  Per-processor bandwidth is exactly ``n(q+1)/(q²+1) − n/P`` per vector
  — the lower bound's leading term.
* ``CommBackend.ALL_TO_ALL`` — the paper's All-to-All formulation
  (lines 16/44): a uniform personalized collective in which every
  processor ships two shard-slots to *every* other processor (padding
  with zeros where less is needed, exactly the uniform-buffer model the
  paper prices). Per-processor bandwidth is ``2n/(q+1) · (1 − 1/P)``
  per vector — twice the lower bound's leading term (§7.2.2).
"""

from __future__ import annotations

import enum
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

import numpy as np

from repro.core import distribution as dist
from repro.core.block_kernels import apply_block
from repro.core.partition import TetrahedralPartition
from repro.core.plans import ExchangePlan
from repro.core.schedule import ExchangeSchedule, build_exchange_schedule
from repro.errors import ConfigurationError, MachineError
from repro.machine.collectives import all_to_all, point_to_point_rounds
from repro.machine.machine import Machine
from repro.tensor.blocks import extract_block
from repro.tensor.packed import PackedSymmetricTensor


class CommBackend(enum.Enum):
    """Communication realization of Algorithm 5's two exchange phases."""

    POINT_TO_POINT = "point-to-point"
    ALL_TO_ALL = "all-to-all"


def pad_tensor(tensor: PackedSymmetricTensor, n_padded: int) -> PackedSymmetricTensor:
    """Embed a packed tensor into a larger zero-padded one (§6.1).

    Padded entries are zero, so STTSV on the padded problem restricted
    to the first ``n`` outputs equals the original STTSV.
    """
    n = tensor.n
    if n_padded < n:
        raise ConfigurationError(f"cannot pad {n} down to {n_padded}")
    if n_padded == n:
        return tensor
    I, J, K = PackedSymmetricTensor.index_arrays(n_padded)
    mask = I < n  # I >= J >= K, so I < n implies the whole triple fits
    old_offsets = (
        I[mask] * (I[mask] + 1) * (I[mask] + 2) // 6
        + J[mask] * (J[mask] + 1) // 2
        + K[mask]
    )
    data = np.zeros(I.size)
    data[mask] = tensor.data[old_offsets]
    return PackedSymmetricTensor(n_padded, data)


class ParallelSTTSV:
    """Executable Algorithm 5 on a simulated machine.

    Parameters
    ----------
    partition:
        The tetrahedral block partition (one Steiner block per
        processor).
    n:
        Original tensor dimension. The instance computes the padded
        dimension ``n' = m · b`` with ``b`` the smallest multiple of
        the shard replication that makes ``n' >= n``.
    backend:
        Communication realization (see :class:`CommBackend`).
    local_threads:
        When > 1, phase 2 dispatches the per-processor block kernels to
        a thread pool of that many workers (capped at ``P``). The
        simulated processors are independent in phase 2, so results are
        bitwise identical to the serial path (tested); NumPy's
        einsum/BLAS kernels release the GIL, so real speedup is
        available for large blocks. Default ``None`` keeps the serial
        loop.

    Examples
    --------
    >>> from repro.steiner import spherical_steiner_system
    >>> from repro.tensor.dense import random_symmetric
    >>> part = TetrahedralPartition(spherical_steiner_system(2))
    >>> algo = ParallelSTTSV(part, n=30)
    >>> (algo.b, algo.n_padded)
    (6, 30)
    """

    def __init__(
        self,
        partition: TetrahedralPartition,
        n: int,
        backend: CommBackend = CommBackend.POINT_TO_POINT,
        local_threads: Optional[int] = None,
    ):
        if local_threads is not None and local_threads < 1:
            raise ConfigurationError(
                f"local_threads must be >= 1, got {local_threads}"
            )
        self.partition = partition
        self.backend = backend
        self.n = n
        self.local_threads = local_threads
        replication = partition.steiner.point_replication()
        m = partition.m
        per_row = -(-n // m)  # ceil(n / m): minimal row-block size
        self.b = replication * (-(-per_row // replication))
        self.n_padded = m * self.b
        self.shard = partition.shard_size(self.b)
        self.schedule: ExchangeSchedule = build_exchange_schedule(partition)
        # Compiled once per instance: flat gather/scatter index arrays
        # and reusable buffers for both exchange phases (same payload
        # contents/sizes as the direct dict-walking formulation).
        self.exchange_plan = ExchangePlan(partition, self.schedule, self.b)

    # -- data loading -----------------------------------------------------------

    def load(
        self, machine: Machine, tensor: PackedSymmetricTensor, x: np.ndarray
    ) -> None:
        """Place tensor blocks and x shards in processor memories.

        Mirrors the algorithm's preconditions: processor ``p`` holds its
        extended tetrahedral block ``A[T_p]`` and its vector shards
        ``x[R_p]^{(p)}`` — nothing else. Loading is an out-of-model
        setup step (the paper's algorithms start from this state) and
        records no communication.

        Split into :meth:`load_tensor` + :meth:`load_vector` so callers
        serving many vectors against one resident tensor (iterative
        drivers, the :mod:`repro.service` layer) pay block extraction
        once and only redistribute shards per request.
        """
        self.load_tensor(machine, tensor)
        self.load_vector(machine, x)

    def load_tensor(
        self, machine: Machine, tensor: PackedSymmetricTensor
    ) -> None:
        """Place the padded tensor blocks in processor memories (the
        expensive, ``x``-independent half of :meth:`load`)."""
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )
        if tensor.n != self.n:
            raise ConfigurationError(
                f"tensor dimension {tensor.n} != configured {self.n}"
            )
        padded = pad_tensor(tensor, self.n_padded)
        for p in range(machine.P):
            blocks = {
                index: extract_block(padded, index, self.b)
                for index in self.partition.owned_blocks(p)
            }
            machine[p].store("tensor_blocks", blocks)

    def load_vector(self, machine: Machine, x: np.ndarray) -> None:
        """Distribute the vector shards ``x[R_p]^{(p)}`` (the cheap,
        per-request half of :meth:`load`; tensor blocks stay resident)."""
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"vector must have shape ({self.n},), got {x.shape}"
            )
        x_padded = dist.pad_vector(x, self.n_padded)
        shards = dist.initial_shards(self.partition, x_padded, self.b)
        for p in range(machine.P):
            machine[p].store("x_shards", shards[p])

    # -- payload builders ----------------------------------------------------------

    def _x_payload(self, machine: Machine, src: int, dst: int) -> Optional[np.ndarray]:
        """Compiled x-phase payload (requires staged ``x_shards``)."""
        return self.exchange_plan.x_payload(src, dst)

    def _y_payload(self, machine: Machine, src: int, dst: int) -> Optional[np.ndarray]:
        """Compiled y-phase payload (requires staged ``y_partial``)."""
        return self.exchange_plan.y_payload(src, dst)

    def _pad_uniform(self, payload: Optional[np.ndarray]) -> np.ndarray:
        """Pad a payload to the uniform 2-shard slot of the All-to-All
        model (pairs share at most two row blocks)."""
        slot = 2 * self.shard
        out = np.zeros(slot)
        if payload is not None:
            out[: payload.size] = payload
        return out

    # -- phase 1: gather x -------------------------------------------------------------

    def _exchange_x(self, machine: Machine) -> None:
        P = machine.P
        plan = self.exchange_plan
        for p in range(P):
            plan.stage_x(p, machine[p].load("x_shards"))
        if self.backend is CommBackend.POINT_TO_POINT:
            received = point_to_point_rounds(
                machine,
                self.schedule.rounds,
                lambda src, dst: self._x_payload(machine, src, dst),
                tag="x-exchange",
            )
        else:
            sendbufs = [
                {
                    dst: self._pad_uniform(self._x_payload(machine, src, dst))
                    for dst in range(P)
                    if dst != src
                }
                for src in range(P)
            ]
            received = all_to_all(machine, sendbufs, tag="x-exchange")
        for p in range(P):
            machine[p].store("x_full", plan.unpack_x(p, received[p]))

    # -- phase 2: local compute ----------------------------------------------------------

    def _compute_processor(self, machine: Machine, p: int) -> None:
        """Phase-2 work of one simulated processor (thread-safe: touches
        only processor ``p``'s memory)."""
        proc = machine[p]
        x_full = proc.load("x_full")
        blocks = proc.load("tensor_blocks")
        y_partial: Dict[int, np.ndarray] = {
            i: np.zeros(self.b) for i in self.partition.R[p]
        }
        for index, block in blocks.items():
            apply_block(index, block, x_full, y_partial)
        proc.store("y_partial", y_partial)

    def _local_compute(self, machine: Machine) -> None:
        threads = self.local_threads
        if threads is not None and threads > 1 and machine.P > 1:
            with ThreadPoolExecutor(
                max_workers=min(threads, machine.P)
            ) as pool:
                # list() re-raises any worker exception.
                list(
                    pool.map(
                        lambda p: self._compute_processor(machine, p),
                        range(machine.P),
                    )
                )
        else:
            for p in range(machine.P):
                self._compute_processor(machine, p)

    # -- phase 3: scatter-reduce y ----------------------------------------------------------

    def _exchange_y(self, machine: Machine) -> None:
        P = machine.P
        plan = self.exchange_plan
        for p in range(P):
            plan.stage_y(p, machine[p].load("y_partial"))
        if self.backend is CommBackend.POINT_TO_POINT:
            received = point_to_point_rounds(
                machine,
                self.schedule.rounds,
                lambda src, dst: self._y_payload(machine, src, dst),
                tag="y-exchange",
            )
        else:
            sendbufs = [
                {
                    dst: self._pad_uniform(self._y_payload(machine, src, dst))
                    for dst in range(P)
                    if dst != src
                }
                for src in range(P)
            ]
            received = all_to_all(machine, sendbufs, tag="y-exchange")
        for p in range(P):
            machine[p].store("y_shards", plan.reduce_y(p, received[p]))

    # -- driver --------------------------------------------------------------------------------

    def run(self, machine: Machine) -> None:
        """Execute all three phases; results stay distributed as
        ``y_shards`` in each processor's memory.

        Each phase is wrapped in an instrumentation span (nested under
        one ``sttsv:run`` parent), so traces and the backend benchmarks
        can attribute wall-clock time to gather / compute / reduce
        regardless of which transport moves the bytes — and, when the
        process-wide tracer is enabled, each phase and every
        communication round it executes is stamped with the trace ids
        of the request (or CLI run) that caused it.
        """
        with machine.instrument.span("sttsv:run"):
            with machine.instrument.span("sttsv:exchange-x"):
                self._exchange_x(machine)
            with machine.instrument.span("sttsv:local-compute"):
                self._local_compute(machine)
            with machine.instrument.span("sttsv:exchange-y"):
                self._exchange_y(machine)

    def gather_result(self, machine: Machine) -> np.ndarray:
        """Reassemble the distributed ``y`` (verification step, outside
        the communication model — the algorithm's contract ends with
        ``y`` distributed exactly like ``x`` was)."""
        shards = [machine[p].load("y_shards") for p in range(machine.P)]
        return dist.assemble_vector(
            self.partition, shards, self.b, original_length=self.n
        )

    # -- accounting ---------------------------------------------------------------------------

    def expected_words_per_processor(self) -> int:
        """Closed-form per-processor send volume over both phases.

        Point-to-point: ``2 · r · (λ₁ − 1) · shard`` — equals
        ``2 (n(q+1)/(q²+1) − n/P)`` for the spherical family (§7.2.2).
        All-to-All: ``2 · (P − 1) · 2 · shard`` — equals
        ``4n/(q+1) (1 − 1/P)``.
        """
        if self.backend is CommBackend.POINT_TO_POINT:
            lambda_point = self.partition.steiner.point_replication()
            per_phase = self.partition.r * (lambda_point - 1) * self.shard
        else:
            per_phase = (self.partition.P - 1) * 2 * self.shard
        return 2 * per_phase

    def flops_per_processor(self, p: int) -> int:
        """Ternary multiplications processor ``p`` performs (§7.1)."""
        return self.partition.ternary_multiplications(p, self.b)
