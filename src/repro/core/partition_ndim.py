"""Order-4 BCSS block partitioning over Steiner quadruple systems.

The paper's order-3 partition assigns each canonical tetrahedral block
to the unique Steiner triple containing its distinct row blocks; exact
optimal partitions for ``s > 3`` are open (no known infinite
``(n, r, s)`` families), so this module takes the pragmatic route the
paper's §8 suggests: use the SQS ``S(2^k, 4, 3)`` family
(:mod:`repro.steiner.boolean`) — every *triple* of row blocks lies in
exactly one quadruple — and assign each canonical order-4 block to a
least-loaded candidate among the quadruples covering its distinct row
blocks:

* 4 distinct row blocks → the four quadruples covering its four
  triples (one extra row block must be fetched unless the fourth point
  closes the quadruple);
* 3 distinct → the unique covering quadruple (no extra fetch);
* ≤ 2 distinct → every quadruple through the pair/point.

The resulting processor needs ``need_p ⊇ R_p`` are irregular, so the
exchange graph is scheduled greedily into *partial permutation* rounds
(distinct senders and distinct receivers per round) — exactly what
:func:`repro.machine.collectives.point_to_point_rounds` accepts; the
regular-graph edge coloring of :mod:`repro.matching.edge_coloring`
does not apply here.

Duck-type compatible with :class:`~repro.core.partition.
TetrahedralPartition` where the distribution helpers need it
(``m / P / R / Q / shard_size / shard_owner_position``): shards of row
block ``i`` live on the ``λ₁`` Steiner holders ``Q_i``; consumers
beyond the holders receive whole row blocks during the x-exchange.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import PartitionError
from repro.steiner.system import SteinerSystem
from repro.tensor.ndpacked import nd_index_arrays


class QuadruplePartition:
    """Assign canonical order-4 block tuples to SQS quadruples.

    Parameters
    ----------
    steiner:
        An ``S(m, 4, 3)`` system; block order is the processor
        numbering (``P = len(steiner)``).
    """

    def __init__(self, steiner: SteinerSystem):
        if steiner.r != 4:
            raise PartitionError(
                f"order-4 partitioning needs an S(m, 4, 3) system,"
                f" got block size r={steiner.r}"
            )
        self.steiner = steiner
        self.m = steiner.m
        self.r = steiner.r
        self.P = len(steiner.blocks)
        self.order = 4
        self.R: List[Tuple[int, ...]] = [
            tuple(sorted(block)) for block in steiner.blocks
        ]
        point_map = steiner.point_to_blocks()
        # Q_i: the λ₁ Steiner holders of row block i — these carry the
        # shards, mirroring the order-3 convention.
        self.Q: List[Tuple[int, ...]] = [
            tuple(sorted(point_map[i])) for i in range(self.m)
        ]
        self.replication = steiner.point_replication()

        triple_to_block: Dict[Tuple[int, ...], int] = {}
        for index, block in enumerate(self.R):
            from itertools import combinations

            for triple in combinations(block, 3):
                triple_to_block[triple] = index

        # Greedy least-loaded assignment of every canonical 4-tuple.
        self.owned: List[List[Tuple[int, ...]]] = [[] for _ in range(self.P)]
        loads = [0] * self.P
        block_table = nd_index_arrays(self.m, 4)
        for row in block_table:
            tuple4 = tuple(int(v) for v in row)
            candidates = self._candidates(tuple4, triple_to_block, point_map)
            owner = min(candidates, key=lambda p: (loads[p], p))
            loads[owner] += 1
            self.owned[owner].append(tuple4)

        # Row blocks each processor touches: its Steiner quadruple plus
        # any extra fetched by 4-distinct assignments.
        self.need: List[Tuple[int, ...]] = []
        for p in range(self.P):
            needed: Set[int] = set(self.R[p])
            for block in self.owned[p]:
                needed.update(block)
            self.need.append(tuple(sorted(needed)))
        self.consumers: List[Tuple[int, ...]] = [
            tuple(
                sorted(p for p in range(self.P) if i in set(self.need[p]))
            )
            for i in range(self.m)
        ]

    def _candidates(
        self,
        tuple4: Tuple[int, ...],
        triple_to_block: Dict[Tuple[int, ...], int],
        point_map: Dict[int, List[int]],
    ) -> Sequence[int]:
        from itertools import combinations

        distinct = sorted(set(tuple4))
        if len(distinct) >= 3:
            found = {
                triple_to_block[triple]
                for triple in combinations(distinct, 3)
            }
            return sorted(found)
        if len(distinct) == 2:
            a, b = distinct
            return [
                p for p in point_map[a] if b in set(self.R[p])
            ]
        return list(point_map[distinct[0]])

    # -- duck-typed distribution interface --------------------------------------

    def shard_size(self, b: int) -> int:
        if b % self.replication != 0:
            raise PartitionError(
                f"row block size {b} not divisible by replication"
                f" {self.replication}"
            )
        return b // self.replication

    def shard_owner_position(self, i: int, p: int) -> int:
        try:
            return self.Q[i].index(p)
        except ValueError:
            raise PartitionError(
                f"processor {p} holds no shard of row block {i}"
            ) from None

    # -- structure queries -------------------------------------------------------

    def owned_blocks(self, p: int) -> List[Tuple[int, ...]]:
        return list(self.owned[p])

    def extra_row_blocks(self, p: int) -> Tuple[int, ...]:
        """Row blocks ``p`` must fetch beyond its Steiner quadruple."""
        return tuple(sorted(set(self.need[p]) - set(self.R[p])))

    def validate(self) -> None:
        """Every canonical block tuple owned exactly once; every owner
        needs only row blocks it declared; every row block sharded."""
        seen: Dict[Tuple[int, ...], int] = {}
        for p, blocks in enumerate(self.owned):
            declared = set(self.need[p])
            for block in blocks:
                if block in seen:
                    raise PartitionError(
                        f"block {block} owned by {seen[block]} and {p}"
                    )
                seen[block] = p
                if not set(block) <= declared:
                    raise PartitionError(
                        f"owner {p} missing row blocks for {block}"
                    )
        from math import comb

        expected = comb(self.m + 3, 4)
        if len(seen) != expected:
            raise PartitionError(
                f"assigned {len(seen)} blocks, expected {expected}"
            )
        for i in range(self.m):
            if not self.Q[i]:
                raise PartitionError(f"row block {i} has no shard holders")

    def storage_words(self, b: int) -> List[int]:
        """Dense words of tensor storage per processor."""
        return [len(blocks) * b**4 for blocks in self.owned]

    def __repr__(self) -> str:
        return (
            f"QuadruplePartition(m={self.m}, P={self.P},"
            f" replication={self.replication})"
        )


def greedy_partial_permutation_rounds(
    edges: Sequence[Tuple[int, int]],
) -> List[Dict[int, int]]:
    """Decompose directed edges into partial-permutation rounds.

    Each round uses every sender and every receiver at most once — the
    exact contract of :func:`repro.machine.collectives.
    point_to_point_rounds`. Greedy maximal matching per round, edges
    taken in sorted order for determinism; round count is at most
    ``2·Δ − 1`` for maximum degree ``Δ`` (Shannon bound for
    multigraph edge coloring), close enough to optimal for irregular
    order-4 exchange graphs.
    """
    remaining = sorted(set(edges))
    for src, dst in remaining:
        if src == dst:
            raise PartitionError(f"self-edge at processor {src}")
    rounds: List[Dict[int, int]] = []
    while remaining:
        round_map: Dict[int, int] = {}
        used_dst: Set[int] = set()
        leftover: List[Tuple[int, int]] = []
        for src, dst in remaining:
            if src not in round_map and dst not in used_dst:
                round_map[src] = dst
                used_dst.add(dst)
            else:
                leftover.append((src, dst))
        rounds.append(round_map)
        remaining = leftover
    return rounds
