"""Order-m BCSS block kernels.

The order-m analogue of :mod:`repro.core.block_kernels`: one stored
dense block's full contribution to the blocked STTSV. For a canonical
block tuple ``B = (I₁ ≥ ... ≥ I_m)`` and each *distinct* row block
``t ∈ B``, the block adds

    w_t · (block contracted on every mode except t's first position
           against the x row blocks of the other modes)

into ``y_t``, where ``w_t`` is the arrangement count of the remaining
``m-1`` indices (:func:`repro.tensor.multiplicity.nd_contribution_weights`).
At ``m = 3`` this reproduces the four-way case split of
``block_kernels.apply_block`` exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.multiplicity import nd_contribution_weights

_LETTERS = "abcdefghij"


def contract_all_but(
    block: np.ndarray, keep_mode: int, vectors: Sequence[np.ndarray]
) -> np.ndarray:
    """Contract every mode of ``block`` except ``keep_mode`` with the
    corresponding entry of ``vectors`` (``vectors[keep_mode]`` is
    ignored); returns a vector along the kept mode."""
    m = block.ndim
    subscripts = [_LETTERS[:m]]
    operands = [block]
    for mode in range(m):
        if mode != keep_mode:
            subscripts.append(_LETTERS[mode])
            operands.append(vectors[mode])
    spec = ",".join(subscripts) + "->" + _LETTERS[keep_mode]
    return np.einsum(spec, *operands, optimize=True)


def apply_block_ndim(
    block_index: Sequence[int],
    block: np.ndarray,
    x_blocks: Sequence[np.ndarray],
    y_blocks: Sequence[np.ndarray],
) -> None:
    """Accumulate one BCSS block's contribution into ``y_blocks``.

    ``x_blocks``/``y_blocks`` are indexed by row-block number; the
    block supplies one weighted contraction per distinct value of its
    canonical tuple.
    """
    block_index = tuple(int(v) for v in block_index)
    weights = nd_contribution_weights(block_index)
    mode_vectors = [x_blocks[value] for value in block_index]
    seen = set()
    for position, value in enumerate(block_index):
        if value in seen:
            continue
        seen.add(value)
        contribution = contract_all_but(block, position, mode_vectors)
        y_blocks[value] += weights[value] * contribution


def kron_vector(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of 1-D vectors, leading factor slowest-varying."""
    out = np.asarray(vectors[0])
    for vector in vectors[1:]:
        out = (out[:, None] * np.asarray(vector)[None, :]).ravel()
    return out


def khatri_rao_columns(factors: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Kronecker (Khatri–Rao) product of ``(b, s)`` factors:
    column ``c`` of the result is ``kron_vector`` of the factors'
    ``c``-th columns."""
    out = np.asarray(factors[0])
    for factor in factors[1:]:
        factor = np.asarray(factor)
        out = (out[:, None, :] * factor[None, :, :]).reshape(
            -1, out.shape[1]
        )
    return out
