"""Communication lower bounds and closed-form cost models (paper §5, §7).

Everything here is exact arithmetic on the paper's formulas; the test
suite and benchmarks compare these against ledger measurements from the
simulator.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.fields.primes import is_prime_power
from repro.util.combinatorics import (
    strict_tetrahedral_number,
    ternary_multiplication_count_naive,
    ternary_multiplication_count_symmetric,
)
from repro.util.validation import check_positive_int


def minimal_access_solution(n: int, P: int) -> Tuple[float, float]:
    """Optimal point of the Lemma 5.1 program.

    Minimize ``x₁ + 2 x₂`` subject to ``n(n-1)(n-2)/(6P) <= x₁`` and
    ``n(n-1)(n-2)/P <= x₂³``; both constraints are monotone so the
    minimum is at the component-wise minimum:
    ``(n(n-1)(n-2)/(6P), (n(n-1)(n-2)/P)^{1/3})``.
    """
    n = check_positive_int(n, "n")
    P = check_positive_int(P, "P")
    volume = n * (n - 1) * (n - 2)
    return volume / (6 * P), (volume / P) ** (1.0 / 3.0)


def minimal_data_access(n: int, P: int) -> float:
    """Minimum elements a 1/P-share processor must access (§5.1):
    ``n(n-1)(n-2)/(6P) + 2 (n(n-1)(n-2)/P)^{1/3}``."""
    x1, x2 = minimal_access_solution(n, P)
    return x1 + 2 * x2


def initial_ownership(n: int, P: int) -> float:
    """Elements a processor may own at start+end without replication:
    ``n(n-1)(n-2)/(6P) + 2n/P`` (tensor share plus one shard of each
    vector)."""
    return strict_tetrahedral_number(n) / P + 2 * n / P


def sttsv_lower_bound(n: int, P: int) -> float:
    """Theorem 5.2: some processor communicates at least
    ``2 (n(n-1)(n-2)/P)^{1/3} − 2n/P`` words."""
    n = check_positive_int(n, "n")
    P = check_positive_int(P, "P")
    volume = n * (n - 1) * (n - 2)
    return 2.0 * (volume / P) ** (1.0 / 3.0) - 2.0 * n / P


def sttsv_lower_bound_leading(n: int, P: int) -> float:
    """Leading term of the bound: ``2 n / P^{1/3}`` (for n >> 1)."""
    return 2.0 * n / P ** (1.0 / 3.0)


def processors_for_q(q: int) -> int:
    """The spherical processor count ``P = q (q² + 1)``."""
    q = check_positive_int(q, "q")
    if not is_prime_power(q):
        raise ConfigurationError(f"q={q} is not a prime power")
    return q * (q * q + 1)


def optimal_bandwidth_cost(n: int, q: int) -> float:
    """Per-processor words sent (== received) by Algorithm 5 with the
    point-to-point schedule (§7.2.2): ``2 (n(q+1)/(q²+1) − n/P)``.

    Matches the leading term of Theorem 5.2 exactly, since
    ``(q²+1)/(q+1) ≈ P^{1/3}``.
    """
    P = processors_for_q(q)
    return 2.0 * (n * (q + 1) / (q * q + 1) - n / P)


def all_to_all_bandwidth_cost(n: int, q: int) -> float:
    """Per-processor words with All-to-All collectives (§7.2.2):
    ``4n/(q+1) · (1 − 1/P)`` — twice the lower bound's leading term."""
    P = processors_for_q(q)
    return 4.0 * n / (q + 1) * (1.0 - 1.0 / P)


def schedule_step_count(q: int) -> int:
    """Point-to-point steps of the optimal schedule (§7.2.2):
    ``q³/2 + 3q²/2 − 1`` (always an integer: q³+3q² is even)."""
    q = check_positive_int(q, "q")
    return (q**3 + 3 * q * q - 2) // 2


def computation_cost_exact(n: int, q: int) -> int:
    """Maximum per-processor ternary multiplications of Algorithm 5
    (§7.1) for padded dimension ``n`` divisible by ``q²+1``:
    ``C(q+1,3)·3b³ + q·(3b²(b−1)/2 + 2b²) + 3b(b−1)(b−2)/6 + 2b(b−1) + b``."""
    processors_for_q(q)  # validates q is a prime power
    m = q * q + 1
    if n % m != 0:
        raise ConfigurationError(f"n={n} not divisible by q²+1={m}")
    b = n // m
    off = (q + 1) * q * (q - 1) // 6 * (3 * b**3)
    non_central = q * (3 * b * b * (b - 1) // 2 + 2 * b * b)
    central = 3 * b * (b - 1) * (b - 2) // 6 + 2 * b * (b - 1) + b
    return off + non_central + central


def computation_cost_leading(n: int, P: int) -> float:
    """Leading term ``n³ / (2P)`` of the per-processor computation (§7.1)."""
    return n**3 / (2.0 * P)


def sequential_ternary_counts(n: int) -> Dict[str, int]:
    """Algorithm 3 vs Algorithm 4 ternary-multiplication counts (§3)."""
    return {
        "naive": ternary_multiplication_count_naive(n),
        "symmetric": ternary_multiplication_count_symmetric(n),
    }


def storage_words_leading(n: int, P: int) -> float:
    """Per-processor tensor storage leading term ``n³ / (6P)`` (§6.1.3)."""
    return n**3 / (6.0 * P)


def sequence_approach_bandwidth(n: int, P: int) -> float:
    """Per-processor words of the 1-D "sequence" (TTM-then-TTV) approach
    (§8 discussion): an allgather of ``x`` costs ``n (1 − 1/P)`` — Θ(n)
    for ``P <= n``, asymptotically larger than Algorithm 5's
    ``Θ(n / P^{1/3})``."""
    return n * (1.0 - 1.0 / P)


def bound_tightness_ratio(n: int, q: int) -> float:
    """Optimal-algorithm cost divided by the lower bound — approaches 1
    from above as n, q grow (exactly matching leading terms)."""
    P = processors_for_q(q)
    return optimal_bandwidth_cost(n, q) / sttsv_lower_bound(n, P)
