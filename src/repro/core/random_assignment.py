"""Ablation baseline: random balanced block assignment (no Steiner).

The tetrahedral partition's whole point is that processor ``p`` only
ever touches the ``r = q+1`` row blocks of ``R_p``. This module
quantifies the alternative: assign the same lower-tetrahedral blocks to
processors in a load-balanced but *unstructured* way and count the row
blocks each processor then needs. With ``C(q+1, 3)+q+1`` blocks per
processor drawn without structure, the union of their indices quickly
approaches all ``m`` row blocks, pushing the exchange volume toward the
All-gather cost ``2(n − n/P)`` — the quantity the Steiner design
divides by ``≈ P^{1/3}/2``.

This is an *accounting* model (no simulator run needed): the exchange
volume of an owner-computes algorithm is fully determined by which row
blocks each processor touches — ``2 Σ_p needed_p · shard-share`` — so
we compute exactly that for both assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.core.partition import TetrahedralPartition
from repro.tensor.blocks import lower_tetrahedral_blocks
from repro.util.seeding import SeedLike, as_generator


@dataclass(frozen=True)
class AssignmentCost:
    """Communication accounting for one block-to-processor assignment."""

    max_row_blocks_needed: int
    mean_row_blocks_needed: float
    words_per_processor: float  # both phases, max over processors

    def __str__(self) -> str:
        return (
            f"needed row blocks: max {self.max_row_blocks_needed},"
            f" mean {self.mean_row_blocks_needed:.1f};"
            f" words/processor {self.words_per_processor:.1f}"
        )


def _exchange_words(
    needed: List[Set[int]], m: int, b: int, P: int
) -> float:
    """Exchange volume for an owner-computes STTSV given row-block needs.

    Every needed row block must be fully gathered (phase 1) and its
    partial fully scattered back (phase 2). With row block ``i`` owned
    in shards by the processors needing it, processor ``p`` receives
    ``b − owned_p(i)`` and sends its own shard to the other users; by
    symmetry of the two phases the per-processor volume is
    ``2 Σ_{i ∈ needed_p} (b − share_p(i))`` where shares split each
    row block evenly among its users.
    """
    users: Dict[int, int] = {i: 0 for i in range(m)}
    for need in needed:
        for i in need:
            users[i] += 1
    worst = 0.0
    for need in needed:
        received = sum(b - b / users[i] for i in need)
        worst = max(worst, 2.0 * received)
    return worst


def steiner_assignment_cost(
    partition: TetrahedralPartition, b: int
) -> AssignmentCost:
    """Accounting for the paper's tetrahedral partition."""
    needed = [set(partition.R[p]) for p in range(partition.P)]
    sizes = [len(s) for s in needed]
    return AssignmentCost(
        max_row_blocks_needed=max(sizes),
        mean_row_blocks_needed=float(np.mean(sizes)),
        words_per_processor=_exchange_words(
            needed, partition.m, b, partition.P
        ),
    )


def random_assignment_cost(
    m: int, P: int, b: int, seed: SeedLike = 0
) -> AssignmentCost:
    """Accounting for a random balanced assignment of the same blocks.

    All ``m(m+1)(m+2)/6`` lower-tetrahedral blocks are dealt to ``P``
    processors as evenly as possible, uniformly at random; each
    processor then needs the union of the block indices it received.
    """
    rng = as_generator(seed)
    blocks = list(lower_tetrahedral_blocks(m))
    order = rng.permutation(len(blocks))
    needed: List[Set[int]] = [set() for _ in range(P)]
    for position, block_id in enumerate(order):
        owner = position % P
        needed[owner].update(blocks[block_id])
    sizes = [len(s) for s in needed]
    return AssignmentCost(
        max_row_blocks_needed=max(sizes),
        mean_row_blocks_needed=float(np.mean(sizes)),
        words_per_processor=_exchange_words(needed, m, b, P),
    )


def structure_advantage(
    partition: TetrahedralPartition, b: int, seed: SeedLike = 0
) -> Tuple[AssignmentCost, AssignmentCost, float]:
    """Compare the two assignments; returns (steiner, random, ratio).

    ``ratio > 1`` is the communication factor the Steiner structure
    saves (approaches ``(q²+1)/(q+1) ≈ P^{1/3}`` divided by the random
    assignment's near-allgather behaviour).
    """
    steiner = steiner_assignment_cost(partition, b)
    random = random_assignment_cost(partition.m, partition.P, b, seed)
    return steiner, random, random.words_per_processor / max(
        steiner.words_per_processor, 1e-12
    )
