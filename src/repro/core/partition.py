"""Tetrahedral block partitioning (paper §6).

Given a Steiner ``(m, r, 3)`` system with ``P`` blocks, the partition
assigns every lower-tetrahedral block index ``(I, J, K)``,
``I >= J >= K``, of an ``m``-row-block symmetric tensor to exactly one
of ``P`` processors:

* **off-diagonal** blocks (``I > J > K``): processor ``p`` owns
  ``TB₃(R_p) = {(I,J,K) : I,J,K ∈ R_p, I > J > K}`` where ``R_p`` is
  the ``p``-th Steiner block — the Steiner axiom makes this a partition
  (§6.1.1);
* **non-central diagonal** blocks (two equal indices): distributed
  ``d = r(r-1)(r-2)/(m-2)`` per processor by a capacitated bipartite
  matching whose existence Corollary 6.7 guarantees, constrained so a
  processor only receives blocks whose indices already lie in its
  ``R_p`` (§6.1.3) — no extra vector data is ever needed;
* **central diagonal** blocks (``I = J = K``): at most one per
  processor by a Hall matching, again index-compatible with ``R_p``.

Vectors: row block ``i`` is needed by the ``|Q_i|`` processors whose
``R_p`` contains ``i`` (``|Q_i| = q(q+1)`` for the spherical family,
Lemma 6.4) and is split evenly among them (§6.1.2), so every processor
starts with exactly ``n/P`` elements of ``x`` and ends with ``n/P``
elements of ``y``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Tuple

from repro.errors import PartitionError
from repro.matching.bmatching import bipartite_b_matching
from repro.steiner.system import SteinerSystem
from repro.tensor.blocks import (
    classify_block,
    canonical_entry_count,
    ternary_multiplications,
)

BlockIndex = Tuple[int, int, int]


class TetrahedralPartition:
    """Assignment of tensor blocks and vector shards to processors.

    Parameters
    ----------
    steiner:
        The generating Steiner ``(m, r, 3)`` system; its block count is
        the processor count ``P`` and its ground-set size is the number
        of row blocks ``m``.

    Attributes
    ----------
    P, m, r:
        Processor count, row-block count, Steiner block size.
    R:
        ``R[p]`` — sorted tuple of row-block indices of processor ``p``.
    N:
        ``N[p]`` — sorted tuple of non-central diagonal block indices.
    D:
        ``D[p]`` — tuple with zero or one central diagonal index.
    Q:
        ``Q[i]`` — sorted tuple of processors requiring row block ``i``.

    Examples
    --------
    >>> from repro.steiner import spherical_steiner_system
    >>> part = TetrahedralPartition(spherical_steiner_system(3))
    >>> (part.P, part.m, part.non_central_per_processor)
    (30, 10, 3)
    """

    def __init__(self, steiner: SteinerSystem):
        self.steiner = steiner
        self.P = len(steiner)
        self.m = steiner.m
        self.r = steiner.r
        self.R: Tuple[Tuple[int, ...], ...] = steiner.blocks

        if self.m > self.P:
            raise PartitionError(
                f"central-diagonal assignment needs m <= P (one distinct"
                f" processor per central block); got m={self.m} > P={self.P}"
            )
        numerator = self.r * (self.r - 1) * (self.r - 2)
        if numerator % (self.m - 2) != 0:
            raise PartitionError(
                f"non-central per-processor count r(r-1)(r-2)/(m-2) ="
                f" {numerator}/{self.m - 2} is not an integer"
            )
        #: Non-central diagonal blocks per processor (q for spherical).
        self.non_central_per_processor = numerator // (self.m - 2)

        self.N = self._assign_non_central()
        self.D = self._assign_central()
        self.Q = self._row_block_sets()

    # -- assignments -------------------------------------------------------------

    def _non_central_blocks(self) -> List[BlockIndex]:
        """All ``m(m-1)`` non-central diagonal block indices, canonical."""
        out: List[BlockIndex] = []
        for a in range(self.m):
            for bb in range(a):
                out.append((a, a, bb))
                out.append((a, bb, bb))
        return out

    def _assign_non_central(self) -> Tuple[Tuple[BlockIndex, ...], ...]:
        """Solve the §6.1.3 b-matching: exactly ``d`` blocks per processor."""
        blocks = self._non_central_blocks()
        block_position = {block: idx for idx, block in enumerate(blocks)}
        members = [frozenset(row) for row in self.R]
        adjacency: List[List[int]] = []
        for p in range(self.P):
            eligible = []
            for block in blocks:
                a, bb = block[0], block[2]
                if a in members[p] and bb in members[p]:
                    eligible.append(block_position[block])
            adjacency.append(eligible)
        assignment = bipartite_b_matching(
            self.P,
            len(blocks),
            adjacency,
            self.non_central_per_processor,
        )
        result = []
        for p in range(self.P):
            owned = sorted(blocks[idx] for idx in assignment[p])
            result.append(tuple(owned))
        # Every non-central block must be assigned exactly once:
        # total demand P*d equals the number of blocks by construction.
        total = sum(len(owned) for owned in result)
        if total != len(blocks):
            raise PartitionError("non-central assignment did not cover all blocks")
        return tuple(result)

    def _assign_central(self) -> Tuple[Tuple[BlockIndex, ...], ...]:
        """Hall matching: each central block ``(a,a,a)`` to a ``p`` with
        ``a ∈ R_p``; each processor receives at most one."""
        members = [frozenset(row) for row in self.R]
        adjacency = [
            [p for p in range(self.P) if a in members[p]] for a in range(self.m)
        ]
        assignment = bipartite_b_matching(self.m, self.P, adjacency, 1)
        per_processor: List[List[BlockIndex]] = [[] for _ in range(self.P)]
        for a in range(self.m):
            (p,) = assignment[a]
            per_processor[p].append((a, a, a))
        return tuple(tuple(owned) for owned in per_processor)

    def _row_block_sets(self) -> Tuple[Tuple[int, ...], ...]:
        mapping = self.steiner.point_to_blocks()
        return tuple(tuple(mapping[i]) for i in range(self.m))

    # -- inventory ------------------------------------------------------------------

    def off_diagonal_blocks(self, p: int) -> List[BlockIndex]:
        """``TB₃(R_p)``: the ``C(r, 3)`` off-diagonal blocks of ``p``."""
        return [
            (i, j, k)
            for i, j, k in (
                tuple(sorted(c, reverse=True)) for c in combinations(self.R[p], 3)
            )
        ]

    def owned_blocks(self, p: int) -> List[BlockIndex]:
        """Every tensor block processor ``p`` owns (the paper's
        ``TB₃(R_p) ∪ N_p ∪ D_p``), canonical order."""
        return sorted(
            self.off_diagonal_blocks(p) + list(self.N[p]) + list(self.D[p]),
            reverse=True,
        )

    def owner_of_block(self) -> Dict[BlockIndex, int]:
        """Map every lower-tetrahedral block index to its owner."""
        owner: Dict[BlockIndex, int] = {}
        for p in range(self.P):
            for block in self.owned_blocks(p):
                if block in owner:
                    raise PartitionError(
                        f"block {block} owned by both {owner[block]} and {p}"
                    )
                owner[block] = p
        return owner

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Exhaustively verify the partition invariants (§6).

        * every lower-tetrahedral block index owned exactly once;
        * ``N_p`` and ``D_p`` indices lie inside ``R_p`` (compatibility:
          no extra vector rows needed);
        * ``|N_p| = r(r-1)(r-2)/(m-2)`` for every processor;
        * ``|D_p| <= 1``; all ``m`` central blocks assigned;
        * ``Q_i`` sizes equal the Steiner point replication.
        """
        owner = self.owner_of_block()
        expected = {
            (i, j, k)
            for i in range(self.m)
            for j in range(i + 1)
            for k in range(j + 1)
        }
        missing = expected - set(owner)
        if missing:
            raise PartitionError(f"{len(missing)} blocks unowned, e.g. {sorted(missing)[:3]}")
        extra = set(owner) - expected
        if extra:
            raise PartitionError(f"unexpected blocks owned: {sorted(extra)[:3]}")
        for p in range(self.P):
            members = set(self.R[p])
            for block in list(self.N[p]) + list(self.D[p]):
                if not set(block) <= members:
                    raise PartitionError(
                        f"processor {p}: diagonal block {block} uses indices"
                        f" outside R_p = {sorted(members)}"
                    )
            if len(self.N[p]) != self.non_central_per_processor:
                raise PartitionError(
                    f"processor {p}: |N_p| = {len(self.N[p])}"
                    f" != {self.non_central_per_processor}"
                )
            if len(self.D[p]) > 1:
                raise PartitionError(f"processor {p}: more than one central block")
        replication = self.steiner.point_replication()
        for i, procs in enumerate(self.Q):
            if len(procs) != replication:
                raise PartitionError(
                    f"row block {i}: |Q_i| = {len(procs)} != {replication}"
                )

    # -- vector distribution -------------------------------------------------------------

    def shard_size(self, b: int) -> int:
        """Per-processor shard length of one row block of size ``b``.

        Requires ``|Q_i|`` (= point replication) to divide ``b``; the
        paper assumes ``b >= q(q+1)`` and padding handles the rest.
        """
        replication = self.steiner.point_replication()
        if b % replication != 0:
            raise PartitionError(
                f"row-block size {b} not divisible by |Q_i| = {replication};"
                f" pad n to a multiple of {self.m * replication}"
            )
        return b // replication

    def shard_owner_position(self, i: int, p: int) -> int:
        """Position of processor ``p`` within ``Q_i`` (its shard slot)."""
        try:
            return self.Q[i].index(p)
        except ValueError:
            raise PartitionError(
                f"processor {p} does not require row block {i}"
            ) from None

    def vector_elements_per_processor(self, b: int) -> int:
        """Elements of ``x`` (equivalently ``y``) each processor owns:
        ``(q+1) · b / (q(q+1)) = n/P`` in the paper's notation."""
        return self.r * self.shard_size(b)

    # -- accounting ------------------------------------------------------------------------

    def storage_words(self, p: int, b: int) -> int:
        """Canonical tensor words stored by processor ``p`` (§6.1.3):
        ``C(r,3)·b³ + d·b²(b+1)/2 + |D_p|·b(b+1)(b+2)/6 ≈ n³/(6P)``."""
        return sum(
            canonical_entry_count(classify_block(block), b)
            for block in self.owned_blocks(p)
        )

    def ternary_multiplications(self, p: int, b: int) -> int:
        """Ternary multiplications processor ``p`` performs (§7.1)."""
        return sum(
            ternary_multiplications(classify_block(block), b)
            for block in self.owned_blocks(p)
        )

    def shared_row_blocks(self, p: int, p_other: int) -> FrozenSet[int]:
        """Row blocks both processors require (``R_p ∩ R_{p'}``).

        By the Steiner property two distinct processors share at most
        2 row blocks — two distinct points determine
        ``(m-2)/(r-2)`` blocks but three points determine one, so two
        ``R`` sets can intersect in at most 2 indices (an intersection
        of 3 would violate uniqueness of the covering block).
        """
        return frozenset(self.R[p]) & frozenset(self.R[p_other])

    def __repr__(self) -> str:
        return (
            f"TetrahedralPartition(P={self.P}, m={self.m}, r={self.r},"
            f" d={self.non_central_per_processor})"
        )
