"""Blocked order-m STTSV and STTSM (symmetric tensor times same matrix).

The Multi-TTM workload of Al Daas, Ballard, Grigori, Kumar & Rouse:
``C = A ×₁ X ×₂ X ··· ×ₘ X`` for a symmetric order-m tensor ``A`` and
an ``n × s`` matrix ``X``; the result is an order-m symmetric tensor
over ``s`` indices. Computed blockwise over BCSS storage via the
cascade of mode products with partially-symmetric temporaries: each
stored canonical block ``D`` at tuple ``B`` is contracted mode-by-mode
against the matching row panels of ``X`` (each step a gemm), and the
resulting ``s^m`` core is added once per distinct permutation of ``B``
with the corresponding output-axis transpose.

Also provides the blocked STTSV over BCSS storage (dense-block
contractions via :mod:`repro.core.bcss_kernels`) and dense oracles for
both.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.bcss_kernels import apply_block_ndim
from repro.errors import ConfigurationError
from repro.tensor.bcss import BCSSTensor
from repro.tensor.ndpacked import (
    NdPackedSymmetricTensor,
    nd_index_arrays,
    pad_ndpacked,
)


def sttsv_bcss(bcss: BCSSTensor, x: np.ndarray) -> np.ndarray:
    """Blocked order-m STTSV: one dense contraction set per stored block.

    Blocks are visited in block-offset order and row-block partials are
    accumulated in that order, so the result is deterministic.
    """
    n, b, nbar = bcss.n, bcss.block_size, bcss.nbar
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},)")
    x_blocks = [x[i * b : (i + 1) * b] for i in range(nbar)]
    y_blocks = [np.zeros(b) for _ in range(nbar)]
    for offset in range(bcss.num_blocks):
        apply_block_ndim(
            bcss.block_indices[offset],
            bcss.blocks[offset],
            x_blocks,
            y_blocks,
        )
    return np.concatenate(y_blocks)


def sttsm_dense_reference(dense: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Oracle: contract every mode of a dense hypercube with ``X``."""
    dense = np.asarray(dense, dtype=np.float64)
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != dense.shape[0]:
        raise ConfigurationError(
            f"matrix must have shape ({dense.shape[0]}, s), got {X.shape}"
        )
    result = dense
    for _ in range(dense.ndim):
        result = np.tensordot(result, X, axes=([0], [0]))
    return result


def sttsm(bcss: BCSSTensor, X: np.ndarray) -> NdPackedSymmetricTensor:
    """Blocked STTSM over BCSS storage; returns the packed ``s``-dim
    order-m symmetric result.

    Per stored block ``D`` at canonical tuple ``B``: the cascade
    ``G = D ×₁ X[I₁] ×₂ X[I₂] ··· ×ₘ X[I_m]`` (each step one gemm over
    a partially-symmetric temporary), then ``C += transpose(G, σ)`` for
    one ``σ`` per distinct ordered arrangement of ``B`` — the
    block-level analogue of expanding packed storage to the full cube.
    """
    m, b = bcss.m, bcss.block_size
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != bcss.n:
        raise ConfigurationError(
            f"matrix must have shape ({bcss.n}, s), got {X.shape}"
        )
    s = X.shape[1]
    core = np.zeros((s,) * m)
    for offset in range(bcss.num_blocks):
        block_tuple = tuple(int(v) for v in bcss.block_indices[offset])
        panels = [X[index * b : (index + 1) * b] for index in block_tuple]
        partial = bcss.blocks[offset]
        for panel in panels:
            partial = np.tensordot(partial, panel, axes=([0], [0]))
        seen = set()
        for sigma in permutations(range(m)):
            arranged = tuple(block_tuple[axis] for axis in sigma)
            if arranged in seen:
                continue
            seen.add(arranged)
            core += np.transpose(partial, axes=sigma)
    packed = NdPackedSymmetricTensor(s, m)
    canonical = nd_index_arrays(s, m)
    packed.data[:] = core[tuple(canonical[:, t] for t in range(m))]
    return packed


def sttsm_ndpacked(
    tensor: NdPackedSymmetricTensor, X: np.ndarray, block_size: int = None
) -> NdPackedSymmetricTensor:
    """Convenience wrapper: pad to a block multiple, convert to BCSS,
    run the blocked cascade. Zero padding rows of ``X`` keep the result
    exact."""
    X = np.asarray(X, dtype=np.float64)
    if block_size is None:
        block_size = max(1, min(tensor.n, 8))
    n_padded = -(-tensor.n // block_size) * block_size
    padded = pad_ndpacked(tensor, n_padded)
    X_padded = np.zeros((n_padded, X.shape[1]))
    X_padded[: tensor.n] = X
    bcss = BCSSTensor.from_ndpacked(padded, block_size)
    return sttsm(bcss, X_padded)
