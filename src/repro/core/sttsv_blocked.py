"""Cache-blocked sequential STTSV.

Runs Algorithm 5's per-block kernels (lines 24–36) sequentially over
*all* lower-tetrahedral blocks — the single-processor specialization of
the paper's blocked computation. Each off-diagonal block becomes three
dense einsum contractions (BLAS-speed), so arithmetic intensity rises
from one multiply-add per packed element (scatter kernel) to dense
tensor-contraction level — the same effect Agullo et al. (2023) exploit
for distributed SYMM, here applied to the sequential kernel.

Use :func:`sttsv_blocked` for large ``n``; it matches the scatter
kernels to rounding and is typically several times faster once ``n``
exceeds a few hundred (see ``benchmarks/bench_sequential_kernels.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.block_kernels import apply_block
from repro.core.sttsv_sequential import _check_vector
from repro.errors import ConfigurationError
from repro.tensor.blocks import extract_block, lower_tetrahedral_blocks
from repro.tensor.packed import PackedSymmetricTensor


def choose_block_size(n: int, target: int = 48) -> int:
    """Pick a block size near ``target`` that divides padded-n cheaply.

    Returns the largest ``b <= target`` with ``b`` dividing ``n`` if one
    exists with ``b >= target // 2``, else ``target`` (the kernel pads).
    """
    if n <= target:
        return n
    for b in range(target, target // 2, -1):
        if n % b == 0:
            return b
    return target


def sttsv_blocked(
    tensor: PackedSymmetricTensor,
    x: np.ndarray,
    block_size: int = None,
) -> np.ndarray:
    """Blocked STTSV: ``y = A ×₂ x ×₃ x`` via dense per-block einsums.

    Parameters
    ----------
    block_size:
        Tile edge ``b``; defaults to :func:`choose_block_size`. When
        ``b`` does not divide ``n`` the problem is zero-padded to the
        next multiple (outputs unaffected).
    """
    n = tensor.n
    x = _check_vector(x, n)
    if block_size is None:
        block_size = choose_block_size(n)
    if block_size < 1:
        raise ConfigurationError("block size must be >= 1")
    b = min(block_size, n)
    m = -(-n // b)
    n_padded = m * b
    if n_padded != n:
        from repro.core.parallel_sttsv import pad_tensor

        tensor = pad_tensor(tensor, n_padded)
        x = np.concatenate([x, np.zeros(n_padded - n)])
    x_blocks = {i: x[i * b : (i + 1) * b] for i in range(m)}
    y_blocks = {i: np.zeros(b) for i in range(m)}
    for index in lower_tetrahedral_blocks(m):
        block = extract_block(tensor, index, b)
        apply_block(index, block, x_blocks, y_blocks)
    return np.concatenate([y_blocks[i] for i in range(m)])[:n]
