"""Partition serialization: save/load tetrahedral partitions as JSON.

Partition construction involves Steiner generation plus two matchings;
for production deployments the assignment should be computed once and
shipped with the job. The JSON schema stores the generating system's
blocks and the diagonal assignments; loading revalidates everything, so
a tampered or corrupted file can never produce a silently-wrong
distribution.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.partition import TetrahedralPartition
from repro.errors import PartitionError
from repro.steiner.system import SteinerSystem

SCHEMA_VERSION = 1


def partition_to_dict(partition: TetrahedralPartition) -> dict:
    """JSON-serializable description of a partition."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "tetrahedral",
        "m": partition.m,
        "r": partition.r,
        "P": partition.P,
        "steiner_blocks": [list(block) for block in partition.R],
        "non_central": [
            [list(block) for block in owned] for owned in partition.N
        ],
        "central": [[list(block) for block in owned] for owned in partition.D],
    }


def partition_from_dict(payload: dict) -> TetrahedralPartition:
    """Rebuild (and fully revalidate) a partition from its description."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise PartitionError(
            f"unsupported schema {payload.get('schema')!r}"
            f" (expected {SCHEMA_VERSION})"
        )
    if payload.get("kind") != "tetrahedral":
        raise PartitionError(f"unsupported partition kind {payload.get('kind')!r}")
    system = SteinerSystem(
        payload["m"], payload["r"], payload["steiner_blocks"], verify=True
    )
    partition = TetrahedralPartition.__new__(TetrahedralPartition)
    partition.steiner = system
    partition.P = len(system)
    partition.m = system.m
    partition.r = system.r
    partition.R = system.blocks
    numerator = partition.r * (partition.r - 1) * (partition.r - 2)
    partition.non_central_per_processor = numerator // (partition.m - 2)
    partition.N = tuple(
        tuple(tuple(block) for block in owned) for owned in payload["non_central"]
    )
    partition.D = tuple(
        tuple(tuple(block) for block in owned) for owned in payload["central"]
    )
    partition.Q = tuple(
        tuple(system.point_to_blocks()[i]) for i in range(partition.m)
    )
    if payload["P"] != partition.P:
        raise PartitionError(
            f"declared P={payload['P']} but system has {partition.P} blocks"
        )
    partition.validate()
    return partition


def save_partition(
    partition: TetrahedralPartition, path: Union[str, Path]
) -> None:
    """Write a partition to ``path`` as JSON."""
    Path(path).write_text(json.dumps(partition_to_dict(partition), indent=1))


def load_partition(path: Union[str, Path]) -> TetrahedralPartition:
    """Load and revalidate a partition from JSON."""
    return partition_from_dict(json.loads(Path(path).read_text()))
