"""Parallel order-4 STTSV over BCSS blocks — Algorithm 5 generalized.

The order-4 sibling of :class:`repro.core.parallel_sttsv.ParallelSTTSV`:
processors are the quadruples of an SQS ``S(2^k, 4, 3)``
(:class:`~repro.core.partition_ndim.QuadruplePartition`), each owning
the BCSS blocks assigned to it and the vector shards of its quadruple's
row blocks. The three phases mirror the paper's:

1. **Gather x** — every shard holder of row block ``i`` sends its shard
   to every consumer of ``i`` (holders of ``i`` plus owners that
   fetched ``i`` as an extra), so consumers end with complete row
   blocks.
2. **Local compute** — :func:`repro.core.bcss_kernels.apply_block_ndim`
   per owned BCSS block, accumulating partial row blocks ``ŷ[i]``.
3. **Scatter-reduce y** — each consumer returns, to every holder
   ``p ∈ Q_i``, the slice of its partial covering ``p``'s shard; holders
   sum (own partial first, then senders in ascending rank order).

The exchange graph is *irregular* (extra fetches break the uniform
degrees of the order-3 schedule), so rounds come from the greedy
partial-permutation scheduler in :mod:`repro.core.partition_ndim` and
execute through :func:`repro.machine.collectives.point_to_point_rounds`
— the same funnel as order 3, so ledger accounting, fault recovery,
and communication fusion all apply unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import distribution as dist
from repro.core.bcss_kernels import apply_block_ndim
from repro.core.parallel_sttsv import CommBackend
from repro.core.partition_ndim import (
    QuadruplePartition,
    greedy_partial_permutation_rounds,
)
from repro.errors import ConfigurationError, MachineError
from repro.machine.collectives import point_to_point_rounds
from repro.machine.machine import Machine
from repro.tensor.bcss import _bcss_block_offsets
from repro.tensor.ndpacked import NdPackedSymmetricTensor, pad_ndpacked


class ParallelSTTSVm:
    """Executable order-4 blocked STTSV on a simulated machine.

    Parameters
    ----------
    partition:
        The SQS-based block partition (one quadruple per processor).
    n:
        Original tensor dimension; padded to ``n' = m · b`` with ``b``
        the smallest replication multiple covering ``ceil(n/m)``.
    backend:
        Only :data:`CommBackend.POINT_TO_POINT` is supported — the
        irregular exchange graph has no uniform buffer slot, so the
        paper's uniform All-to-All pricing does not apply.
    """

    def __init__(
        self,
        partition: QuadruplePartition,
        n: int,
        backend: CommBackend = CommBackend.POINT_TO_POINT,
    ):
        if backend is not CommBackend.POINT_TO_POINT:
            raise ConfigurationError(
                "order-4 STTSV supports only the point-to-point variant"
                " (irregular exchange graphs have no uniform All-to-All"
                " slot)"
            )
        self.partition = partition
        self.backend = backend
        self.n = n
        self.order = 4
        replication = partition.replication
        m = partition.m
        per_row = -(-n // m)
        self.b = replication * (-(-per_row // replication))
        self.n_padded = m * self.b
        self.shard = partition.shard_size(self.b)

        # Ordered-pair payload maps: row blocks each message carries.
        x_pairs: Dict[Tuple[int, int], List[int]] = {}
        for i in range(m):
            holders = partition.Q[i]
            for src in holders:
                for dst in partition.consumers[i]:
                    if dst != src:
                        x_pairs.setdefault((src, dst), []).append(i)
        self._x_pairs = {
            pair: sorted(blocks) for pair, blocks in x_pairs.items()
        }
        self._y_pairs = {
            (dst, src): blocks for (src, dst), blocks in self._x_pairs.items()
        }
        self.rounds_x = greedy_partial_permutation_rounds(
            sorted(self._x_pairs)
        )
        self.rounds_y = greedy_partial_permutation_rounds(
            sorted(self._y_pairs)
        )

    # -- data loading -----------------------------------------------------------

    def load(
        self, machine: Machine, tensor: NdPackedSymmetricTensor, x: np.ndarray
    ) -> None:
        self.load_tensor(machine, tensor)
        self.load_vector(machine, x)

    def _check_machine(self, machine: Machine) -> None:
        if machine.P != self.partition.P:
            raise MachineError(
                f"machine has {machine.P} processors, partition needs"
                f" {self.partition.P}"
            )

    def load_tensor(
        self, machine: Machine, tensor: NdPackedSymmetricTensor
    ) -> None:
        """Place each processor's owned BCSS blocks (x-independent)."""
        self._check_machine(machine)
        if tensor.d != 4:
            raise ConfigurationError(
                f"ParallelSTTSVm handles order 4, got order {tensor.d}"
            )
        if tensor.n != self.n:
            raise ConfigurationError(
                f"tensor dimension {tensor.n} != configured {self.n}"
            )
        padded = pad_ndpacked(tensor, self.n_padded)
        for p in range(machine.P):
            blocks = {
                index: padded.data[_bcss_block_offsets(index, self.b)]
                for index in self.partition.owned[p]
            }
            machine[p].store("tensor_blocks", blocks)

    def load_vector(self, machine: Machine, x: np.ndarray) -> None:
        """Distribute shards over each row block's Steiner holders."""
        self._check_machine(machine)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"vector must have shape ({self.n},), got {x.shape}"
            )
        x_padded = dist.pad_vector(x, self.n_padded)
        shards = dist.initial_shards(self.partition, x_padded, self.b)
        for p in range(machine.P):
            machine[p].store("x_shards", shards[p])

    # -- phase 1: gather x ------------------------------------------------------

    def _exchange_x(self, machine: Machine) -> None:
        P = machine.P
        shards = [machine[p].load("x_shards") for p in range(P)]
        x_full: List[Dict[int, np.ndarray]] = []
        for p in range(P):
            rows = {i: np.zeros(self.b) for i in self.partition.need[p]}
            for i, shard in shards[p].items():
                lo, hi = dist.shard_bounds(self.partition, i, p, self.b)
                rows[i][lo:hi] = shard
            x_full.append(rows)

        def payload_for(src: int, dst: int) -> Optional[np.ndarray]:
            blocks = self._x_pairs.get((src, dst))
            if not blocks:
                return None
            return np.concatenate([shards[src][i] for i in blocks])

        received = point_to_point_rounds(
            machine, self.rounds_x, payload_for, tag="x-exchange"
        )
        for p in range(P):
            for src in sorted(received[p]):
                payload = received[p][src]
                for slot, i in enumerate(self._x_pairs[(src, p)]):
                    lo, hi = dist.shard_bounds(
                        self.partition, i, src, self.b
                    )
                    x_full[p][i][lo:hi] = payload[
                        slot * self.shard : (slot + 1) * self.shard
                    ]
            machine[p].store("x_full", x_full[p])

    # -- phase 2: local compute -------------------------------------------------

    def _local_compute(self, machine: Machine) -> None:
        for p in range(machine.P):
            proc = machine[p]
            x_full = proc.load("x_full")
            blocks = proc.load("tensor_blocks")
            y_partial: Dict[int, np.ndarray] = {
                i: np.zeros(self.b) for i in self.partition.need[p]
            }
            for index, block in blocks.items():
                apply_block_ndim(index, block, x_full, y_partial)
            proc.store("y_partial", y_partial)

    # -- phase 3: scatter-reduce y ----------------------------------------------

    def _exchange_y(self, machine: Machine) -> None:
        P = machine.P
        partials = [machine[p].load("y_partial") for p in range(P)]

        def payload_for(src: int, dst: int) -> Optional[np.ndarray]:
            blocks = self._y_pairs.get((src, dst))
            if not blocks:
                return None
            pieces = []
            for i in blocks:
                lo, hi = dist.shard_bounds(self.partition, i, dst, self.b)
                pieces.append(partials[src][i][lo:hi])
            return np.concatenate(pieces)

        received = point_to_point_rounds(
            machine, self.rounds_y, payload_for, tag="y-exchange"
        )
        for p in range(P):
            shards: Dict[int, np.ndarray] = {}
            for i in self.partition.R[p]:
                lo, hi = dist.shard_bounds(self.partition, i, p, self.b)
                shards[i] = partials[p][i][lo:hi].copy()
            for src in sorted(received[p]):
                payload = received[p][src]
                for slot, i in enumerate(self._y_pairs[(src, p)]):
                    shards[i] += payload[
                        slot * self.shard : (slot + 1) * self.shard
                    ]
            machine[p].store("y_shards", shards)

    # -- driver -----------------------------------------------------------------

    def run(self, machine: Machine) -> None:
        """Execute the three phases; ``y`` stays distributed as shards.

        Communication is fused per round batch whenever the machine has
        fusion enabled (the collectives layer handles it); there is no
        compute/comm overlap pipeline at order 4 yet.
        """
        with machine.instrument.span("sttsv:run"):
            with machine.instrument.span("sttsv:exchange-x"):
                self._exchange_x(machine)
            with machine.instrument.span("sttsv:local-compute"):
                self._local_compute(machine)
            with machine.instrument.span("sttsv:exchange-y"):
                self._exchange_y(machine)

    def gather_result(self, machine: Machine) -> np.ndarray:
        shards = [machine[p].load("y_shards") for p in range(machine.P)]
        return dist.assemble_vector(
            self.partition, shards, self.b, original_length=self.n
        )

    # -- accounting --------------------------------------------------------------

    def words_per_processor(self) -> List[int]:
        """Exact per-processor send volume over both phases, from the
        pair maps (matches the ledger's algorithmic counts)."""
        words = [0] * self.partition.P
        for (src, _), blocks in self._x_pairs.items():
            words[src] += len(blocks) * self.shard
        for (src, _), blocks in self._y_pairs.items():
            words[src] += len(blocks) * self.shard
        return words
