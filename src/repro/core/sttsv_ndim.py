"""d-dimensional STTSV (paper §8 extension).

``y = A ×₂ x ×₃ x ··· ×_d x`` for an order-``d`` fully symmetric
tensor: ``y_i = Σ_{j₂..j_d} a_{i j₂ ... j_d} x_{j₂} ··· x_{j_d}``.
The paper notes its lower-bound arguments "can easily be extended for
d-dimensional STTSV computations" while optimal *partitions* are open
(no known infinite Steiner ``(n, r, s)`` families for ``s > 3``);
accordingly this module provides:

* sequential kernels: a dense-einsum oracle and a symmetric-exploiting
  kernel over packed storage performing one fused update per canonical
  entry — the order-d generalization of Algorithm 4: for canonical
  multiset ``M`` with value ``a`` and each *distinct* ``t ∈ M``, add
  ``w · a · Π_{s ∈ M∖{t}} x_s`` to ``y_t`` where ``w`` is the number of
  distinct arrangements of the remaining ``d−1`` indices;
* the generalized memory-independent lower bound,
  ``2 (n(n−1)···(n−d+1)/P)^{1/d} − 2n/P``.
"""

from __future__ import annotations

from functools import lru_cache
from math import factorial
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.tensor.ndpacked import NdPackedSymmetricTensor, nd_index_arrays
from repro.util.combinatorics import falling_factorial
from repro.util.validation import check_positive_int


def sttsv_ndim_dense_reference(dense: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Oracle: contract modes 2..d of a dense hypercube with ``x``."""
    dense = np.asarray(dense, dtype=np.float64)
    d = dense.ndim
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (dense.shape[0],):
        raise ConfigurationError("vector shape mismatch")
    result = dense
    for _ in range(d - 1):
        result = result @ x
    return result


def _remaining_arrangements(counts: Dict[int, int], removed: int) -> int:
    """Distinct arrangements of the multiset minus one copy of ``removed``."""
    total = sum(counts.values()) - 1
    numerator = factorial(total)
    for value, count in counts.items():
        effective = count - 1 if value == removed else count
        numerator //= factorial(effective)
    return numerator


def sttsv_ndim_scalar(
    tensor: NdPackedSymmetricTensor, x: np.ndarray
) -> np.ndarray:
    """Scalar-python reference kernel over packed storage.

    Touches each of the ``C(n+d-1, d)`` canonical entries exactly once
    (the d-dimensional analogue of Algorithm 4's factor-(d-1)! work
    saving over the naive ``n^d`` loop). Kept as the benchmark baseline
    and cross-check for the vectorized :func:`sttsv_ndim`.
    """
    n, d = tensor.n, tensor.d
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},)")
    y = np.zeros(n)
    for canonical, value in tensor.canonical_entries():
        if value == 0.0:
            continue
        counts: Dict[int, int] = {}
        for index in canonical:
            counts[index] = counts.get(index, 0) + 1
        # Product of x over the full multiset; divide out the output slot.
        for output, count in counts.items():
            weight = _remaining_arrangements(counts, output)
            product = 1.0
            for other, other_count in counts.items():
                effective = other_count - 1 if other == output else other_count
                product *= x[other] ** effective
            y[output] += weight * value * product
    return y


@lru_cache(maxsize=16)
def _ndim_scatter_plan(n: int, d: int) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(indices, weights)`` for the vectorized order-d kernel.

    ``indices`` is the ``(size, d)`` canonical tuple table aligned with
    packed offsets; ``weights[:, c]`` is the arrangement count of the
    remaining ``d-1`` indices when column ``c``'s value is the output —
    zeroed on every column that repeats an earlier column's value, so
    each *distinct* output slot contributes exactly once (the order-d
    generalization of
    :func:`repro.tensor.multiplicity.contribution_weights`).
    """
    indices = nd_index_arrays(n, d)
    facts = np.array([factorial(i) for i in range(d + 1)], dtype=np.float64)
    # counts[:, c] = multiplicity of indices[:, c] within its own row.
    counts = (indices[:, :, None] == indices[:, None, :]).sum(axis=2)
    first = np.ones(indices.shape, dtype=bool)
    first[:, 1:] = indices[:, 1:] != indices[:, :-1]  # rows are non-increasing
    # Π over distinct values of count!  (one factor per first occurrence).
    denominator = np.where(first, facts[counts], 1.0).prod(axis=1)
    # (d-1)! · count_c / denominator is the exact integer
    # _remaining_arrangements(counts, value_c); all terms are small
    # integers so the float arithmetic is exact.
    weights = np.where(
        first, facts[d - 1] * counts / denominator[:, None], 0.0
    )
    return indices, weights


def sttsv_ndim(tensor: NdPackedSymmetricTensor, x: np.ndarray) -> np.ndarray:
    """Vectorized symmetric-exploiting order-d STTSV over packed storage.

    One weighted ``bincount`` scatter-add per index column: column ``c``
    contributes ``w_c · a · Π_{c' ≠ c} x[i_{c'}]`` to ``y[i_c]``, with
    ``w_c`` zero on repeated columns. At ``d = 3`` this performs the
    *bitwise-identical* sequence of float operations as
    :func:`repro.core.sttsv_sequential.sttsv_packed_bincount` — same
    weights, same left-associated products, same accumulation order —
    which the property suite pins.
    """
    n, d = tensor.n, tensor.d
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},)")
    indices, weights = _ndim_scatter_plan(n, d)
    a = tensor.data
    y = None
    for c in range(d):
        contribution = weights[:, c] * a
        for other in range(d):
            if other != c:
                contribution = contribution * x[indices[:, other]]
        partial = np.bincount(indices[:, c], weights=contribution, minlength=n)
        y = partial if y is None else y + partial
    return y


def sttsv_ndim_ternary_count(n: int, d: int) -> int:
    """Multiplications the symmetric kernel performs: one fused
    (d-ary) multiplication per (canonical entry, distinct output) pair.

    For ``d = 3`` this is dominated by ``3 · C(n, 3) ≈ n³/2``, matching
    Algorithm 4's count at leading order.
    """
    from itertools import combinations_with_replacement

    check_positive_int(n, "n")
    check_positive_int(d, "d")
    total = 0
    for combo in combinations_with_replacement(range(n), d):
        total += len(set(combo))
    return total


def sttsv_ndim_lower_bound(n: int, P: int, d: int) -> float:
    """Generalized Theorem 5.2 (paper §8):
    ``2 (n(n−1)···(n−d+1)/P)^{1/d} − 2n/P``.

    Derivation mirrors the 3-D case: the symmetrized Loomis–Whitney
    inequality becomes ``d!|V| <= |∪ φ|^d``, the load-balance constraint
    ``n(n−1)···(n−d+1)/(d! P) <= x₁``, and the minimum of ``x₁ + 2x₂``
    sits at the componentwise minimum.
    """
    check_positive_int(n, "n")
    check_positive_int(P, "P")
    check_positive_int(d, "d")
    if d > n:
        raise ConfigurationError(f"order d={d} exceeds dimension n={n}")
    volume = falling_factorial(n, d)
    return 2.0 * (volume / P) ** (1.0 / d) - 2.0 * n / P
