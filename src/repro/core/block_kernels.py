"""Per-block ternary-multiplication kernels (Algorithm 5, lines 24–36).

Each processor owns dense ``b × b × b`` blocks of the virtual full
symmetric tensor and the ``q + 1`` row blocks of ``x`` its index set
``R_p`` touches. For a block with block-index ``(I, J, K)`` the paper's
case split becomes three (or fewer) weighted triple contractions:

* ``I > J > K`` (off-diagonal, line 26–28)::

      y[I] += 2 · A ×₂ x[J] ×₃ x[K]
      y[J] += 2 · A ×₁ x[I] ×₃ x[K]
      y[K] += 2 · A ×₁ x[I] ×₂ x[J]

* ``I == J > K`` (non-central diagonal, line 30)::

      y[I] += 2 · A ×₂ x[I] ×₃ x[K]
      y[K] += 1 · A ×₁ x[I] ×₂ x[I]

* ``I > J == K`` (non-central diagonal, line 32)::

      y[I] += 1 · A ×₂ x[K] ×₃ x[K]
      y[K] += 2 · A ×₁ x[I] ×₂ x[K]

* ``I == J == K`` (central diagonal, line 34)::

      y[I] += 1 · A ×₂ x[I] ×₃ x[I]

The weights {2, 1} are the ordered-arrangement multiplicities of the
block positions in the full tensor; summed over a processor's block
inventory these updates reproduce the exact symmetric STTSV (verified
against :func:`repro.core.sttsv_sequential.sttsv_packed`).

All contractions are einsum calls (BLAS-backed where possible) — no
Python-level loops over tensor entries.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


def contract_mode23(block: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``(A ×₂ u ×₃ v)_i = Σ_{j,k} A[i,j,k] u_j v_k``."""
    return np.einsum("ijk,j,k->i", block, u, v, optimize=True)


def contract_mode13(block: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``(A ×₁ u ×₃ v)_j = Σ_{i,k} A[i,j,k] u_i v_k``."""
    return np.einsum("ijk,i,k->j", block, u, v, optimize=True)


def contract_mode12(block: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """``(A ×₁ u ×₂ v)_k = Σ_{i,j} A[i,j,k] u_i v_j``."""
    return np.einsum("ijk,i,j->k", block, u, v, optimize=True)


def apply_block(
    block_index: Tuple[int, int, int],
    block: np.ndarray,
    x_blocks: Dict[int, np.ndarray],
    y_blocks: Dict[int, np.ndarray],
) -> None:
    """Accumulate one block's contributions into per-row-block outputs.

    Parameters
    ----------
    block_index:
        Canonical ``(I, J, K)`` with ``I >= J >= K``.
    block:
        The dense ``b × b × b`` sub-cube at that position.
    x_blocks:
        Row blocks of the input vector, keyed by row-block index; must
        contain ``I``, ``J`` and ``K``.
    y_blocks:
        Mutable accumulator row blocks (same keys); updated in place.
    """
    I, J, K = block_index
    if not I >= J >= K:
        raise ConfigurationError(f"block index {block_index} not canonical")
    if I > J > K:
        y_blocks[I] += 2.0 * contract_mode23(block, x_blocks[J], x_blocks[K])
        y_blocks[J] += 2.0 * contract_mode13(block, x_blocks[I], x_blocks[K])
        y_blocks[K] += 2.0 * contract_mode12(block, x_blocks[I], x_blocks[J])
    elif I == J and J > K:
        y_blocks[I] += 2.0 * contract_mode23(block, x_blocks[I], x_blocks[K])
        y_blocks[K] += contract_mode12(block, x_blocks[I], x_blocks[I])
    elif I > J and J == K:
        y_blocks[I] += contract_mode23(block, x_blocks[K], x_blocks[K])
        y_blocks[K] += 2.0 * contract_mode13(block, x_blocks[I], x_blocks[K])
    else:  # I == J == K
        y_blocks[I] += contract_mode23(block, x_blocks[I], x_blocks[I])


def block_flop_count(block_index: Tuple[int, int, int], b: int) -> int:
    """Ternary multiplications Algorithm 5 performs for this block (§7.1).

    Off-diagonal blocks do ``3 b³``; non-central diagonal blocks
    ``3 b²(b-1)/2 + 2 b²``; central ``3 b(b-1)(b-2)/6 + 2 b(b-1) + b``.
    (The dense kernels above perform more *elementary* multiplications
    — they do not exploit symmetry inside diagonal blocks — but the
    paper's cost metric counts the canonical ternary multiplications,
    which is what this function returns.)
    """
    from repro.tensor.blocks import classify_block, ternary_multiplications

    return ternary_multiplications(classify_block(block_index), b)
