"""Compiled execution plans for repeated STTSV products.

Every iterative driver in the repo (HOPM, SS-HOPM deflation, the CP
gradient, MTTKRP) evaluates ``y = A ×₂ x ×₃ x`` in a tight loop, yet
much of each evaluation depends only on the tensor data and the
partition — not on ``x``. This module compiles that ``x``-independent
work once and reuses it:

* :class:`SequentialPlan` — bound to one
  :class:`~repro.tensor.packed.PackedSymmetricTensor`. Precomputes
  either a symmetry-reduced mode-1 unfolding (``gemm`` strategy: one
  BLAS matrix-vector / matrix-matrix product per STTSV) or the fused
  weight-times-data scatter arrays (``bincount`` strategy: the packed
  scatter kernel minus all per-call weight recomputation). Exposes
  ``apply(x)`` and the batched ``apply_batch(X)`` for ``X ∈ R^{n×s}``
  — one GEMM-shaped reduction instead of ``s`` independent passes.
* :class:`ExchangePlan` — compiled once per
  :class:`~repro.core.parallel_sttsv.ParallelSTTSV`. Replaces the
  per-call dict lookups, ``sorted(common)`` passes, slicing, and
  ``np.concatenate`` payload assembly of Algorithm 5's two exchange
  phases with precomputed flat gather/scatter index arrays and
  reusable preallocated send buffers. Communication accounting is
  unchanged: payload sizes, message counts, and round structure are
  identical to the direct implementation (asserted by tests).

Strategy semantics
------------------

``bincount`` reproduces :func:`~repro.core.sttsv_sequential.
sttsv_packed_bincount` bit for bit (same scatter order, with the
``w·a`` products hoisted to compile time), and its ``apply_batch``
columns are bitwise equal to a column-by-column ``apply`` loop.
``gemm`` evaluates the same exact sum in BLAS summation order —
results agree with the scatter kernels to machine-precision rounding
(``~1e-13`` relative) but are not bitwise identical, and individual
batch columns may differ from single-vector products in the last ulp
(BLAS kernels for GEMV and multi-column GEMM block differently).
``auto`` picks ``gemm`` when the operator fits the memory budget
(``n²(n+1)/2`` doubles; 32 MB at n = 200) and ``bincount`` otherwise.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

import numpy as np

from repro.errors import ConfigurationError
from repro.tensor.packed import PackedSymmetricTensor

#: Largest gemm-strategy operator ``auto`` will materialize (bytes).
DEFAULT_GEMM_BUDGET_BYTES = 256 * 1024 * 1024

#: Default entry bound of the module-level compiled-plan cache.
DEFAULT_PLAN_CACHE_SIZE = 64

#: Default byte budget of the compiled-plan cache (1 GiB of operators).
DEFAULT_PLAN_CACHE_BYTES = 1024 * 1024 * 1024

_STRATEGIES = ("auto", "gemm", "bincount")


class CacheInfo(NamedTuple):
    """Snapshot of an :class:`LRUByteCache` (``cache_info()`` shape)."""

    hits: int
    misses: int
    currsize: int
    maxsize: Optional[int]
    nbytes: int
    byte_budget: Optional[int]
    evictions: int


class LRUByteCache:
    """Least-recently-used cache bounded by entry count *and* bytes.

    The eviction policy every long-lived cache in the repo shares (the
    compiled-plan cache here, the warm engine pool in
    :mod:`repro.service.sessions`): entries carry an explicit byte
    weight, lookups refresh recency, and inserts evict from the cold
    end until both ``maxsize`` and ``byte_budget`` hold again. A bound
    of ``None`` disables that dimension. The newest entry is never
    evicted on its own insert, so one oversized entry degrades the
    budget to best-effort rather than thrashing.

    ``on_evict(key, value)`` fires for every *capacity* eviction and
    for :meth:`clear` — the hook that lets owners release real
    resources (drop a tensor's plan attribute, close a session's
    machine). :meth:`discard` removes silently (for entries whose
    resources are already gone, e.g. a garbage-collected tensor).

    ``on_evict`` is always invoked **after** the cache lock has been
    released. Hooks routinely take their own locks (a session's
    ``exec_lock``, a server's lane registry), so firing them under the
    cache lock invites a classic ABBA deadlock: thread 1 holds the
    cache lock inside ``put`` and waits for the resource lock in the
    hook, while thread 2 holds that resource lock and waits for the
    cache lock in ``get``. Evicted entries are collected under the
    lock and the hooks run once it is dropped (regression-tested in
    ``tests/unit/test_plans_concurrency.py``).
    """

    def __init__(
        self,
        maxsize: Optional[int] = None,
        byte_budget: Optional[int] = None,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ):
        if maxsize is not None and maxsize < 1:
            raise ConfigurationError(f"maxsize must be >= 1, got {maxsize}")
        if byte_budget is not None and byte_budget < 0:
            raise ConfigurationError(
                f"byte_budget must be >= 0, got {byte_budget}"
            )
        self.maxsize = maxsize
        self.byte_budget = byte_budget
        self._on_evict = on_evict
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def note_miss(self) -> None:
        """Count a miss observed outside :meth:`get` — a caller that
        bypassed the lookup and went straight to rebuilding the value."""
        with self._lock:
            self._misses += 1

    def put(self, key: Hashable, value: Any, nbytes: int = 0) -> None:
        """Insert (or replace) ``key`` and evict until bounds hold."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._nbytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._nbytes += nbytes
            evicted = self._shrink()
        self._fire_evictions(evicted)

    def keys(self) -> List[Hashable]:
        """Keys from coldest to hottest (a snapshot copy)."""
        with self._lock:
            return list(self._entries)

    def discard(self, key: Hashable) -> Optional[Any]:
        """Remove ``key`` without firing ``on_evict`` (owner-initiated)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._nbytes -= entry[1]
            return entry[0]

    def clear(self) -> None:
        """Evict every entry (``on_evict`` fires for each, lock-free)."""
        with self._lock:
            evicted = []
            while self._entries:
                evicted.append(self._evict_oldest())
        self._fire_evictions(evicted)

    def resize(
        self,
        maxsize: Optional[int],
        byte_budget: Optional[int],
    ) -> None:
        """Change the bounds and trim immediately."""
        with self._lock:
            if maxsize is not None and maxsize < 1:
                raise ConfigurationError(
                    f"maxsize must be >= 1, got {maxsize}"
                )
            if byte_budget is not None and byte_budget < 0:
                raise ConfigurationError(
                    f"byte_budget must be >= 0, got {byte_budget}"
                )
            self.maxsize = maxsize
            self.byte_budget = byte_budget
            evicted = self._shrink()
        self._fire_evictions(evicted)

    def info(self) -> CacheInfo:
        """Hit/size/byte counters (the ``functools`` ``cache_info`` idiom)."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                currsize=len(self._entries),
                maxsize=self.maxsize,
                nbytes=self._nbytes,
                byte_budget=self.byte_budget,
                evictions=self._evictions,
            )

    def _evict_oldest(self) -> Tuple[Hashable, Any]:
        """Pop the coldest entry under the lock; the caller fires the
        ``on_evict`` hook after releasing it (see class docstring)."""
        key, (value, nbytes) = self._entries.popitem(last=False)
        self._nbytes -= nbytes
        self._evictions += 1
        return key, value

    def _shrink(self) -> List[Tuple[Hashable, Any]]:
        evicted: List[Tuple[Hashable, Any]] = []
        while len(self._entries) > 1 and (
            (self.maxsize is not None and len(self._entries) > self.maxsize)
            or (
                self.byte_budget is not None
                and self._nbytes > self.byte_budget
            )
        ):
            evicted.append(self._evict_oldest())
        return evicted

    def _fire_evictions(
        self, evicted: List[Tuple[Hashable, Any]]
    ) -> None:
        if self._on_evict is None:
            return
        for key, value in evicted:
            self._on_evict(key, value)


class SequentialPlan:
    """A compiled sequential/batched STTSV executor for one tensor.

    Parameters
    ----------
    tensor:
        The bound tensor. The plan snapshots nothing — it references
        ``tensor.data`` directly — but precomputed products bake the
        *current* values in, so the plan is only valid while the data
        is unmodified (see :func:`sequential_plan` for the cache that
        tracks this).
    strategy:
        ``"auto"`` (default), ``"gemm"``, or ``"bincount"``.
    gemm_budget_bytes:
        Memory ceiling for the ``auto`` strategy's gemm operator.

    Examples
    --------
    >>> from repro.tensor.dense import random_symmetric
    >>> tensor = random_symmetric(12, seed=0)
    >>> plan = SequentialPlan(tensor)
    >>> x = np.arange(12.0)
    >>> from repro.core.sttsv_sequential import sttsv_packed
    >>> bool(np.allclose(plan.apply(x), sttsv_packed(tensor, x)))
    True
    """

    def __init__(
        self,
        tensor: PackedSymmetricTensor,
        strategy: str = "auto",
        gemm_budget_bytes: int = DEFAULT_GEMM_BUDGET_BYTES,
    ):
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.n = tensor.n
        self._data = tensor.data
        self._mutations = getattr(tensor, "_mutations", 0)
        self.requested_strategy = strategy
        if strategy == "auto":
            strategy = (
                "gemm"
                if self._gemm_bytes(self.n) <= gemm_budget_bytes
                else "bincount"
            )
        self.strategy = strategy
        self._norm_sq: Optional[float] = None
        if strategy == "gemm":
            self._compile_gemm()
        else:
            self._compile_bincount()

    @staticmethod
    def _gemm_bytes(n: int) -> int:
        """Bytes of the symmetry-reduced unfolding for dimension ``n``."""
        return n * (n * (n + 1) // 2) * 8

    # -- compilation -----------------------------------------------------------

    def _compile_gemm(self) -> None:
        """Build the symmetry-reduced mode-1 unfolding ``B``.

        ``B[i, t] = a_{i,j_t,k_t} · (2 − [j_t = k_t])`` over canonical
        pairs ``j_t >= k_t``, so that ``y = B (x ⊙ x)|_pairs`` — a
        single ``n × n(n+1)/2`` GEMV per product, and a GEMM for a
        batch. ``n(n+1)/2 · n`` doubles ≈ half the dense cube.
        """
        n = self.n
        Jp, Kp = np.tril_indices(n)
        gi = np.arange(n)[:, None]
        # Canonicalize (i, j_t, k_t) descending; j_t >= k_t already.
        hi = np.maximum(gi, Jp)
        lo = np.minimum(gi, Kp)
        mid = gi + Jp + Kp
        mid -= hi
        mid += -lo
        offsets = hi * (hi + 1) * (hi + 2) // 6
        offsets += mid * (mid + 1) // 2
        offsets += lo
        B = self._data[offsets]
        B *= np.where(Jp == Kp, 1.0, 2.0)[None, :]
        self._pair_j = Jp
        self._pair_k = Kp
        self._operator = B

    def _compile_bincount(self) -> None:
        """Hoist the fused ``weight · a`` scatter arrays (Algorithm 4)."""
        from repro.core.sttsv_sequential import _scatter_plan

        I, J, K, w_i, w_j, w_k = _scatter_plan(self.n)
        self._idx = (I, J, K)
        self._wa = (w_i * self._data, w_j * self._data, w_k * self._data)

    # -- validation ------------------------------------------------------------

    def matches(self, tensor: PackedSymmetricTensor) -> bool:
        """True iff the plan was compiled against this tensor's current
        data (same array object, no element writes since)."""
        return self._data is tensor.data and self._mutations == getattr(
            tensor, "_mutations", 0
        )

    def _check_vector(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"vector must have shape ({self.n},), got {x.shape}"
            )
        return x

    def _check_matrix(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.n:
            raise ConfigurationError(
                f"batch must have shape ({self.n}, s), got {X.shape}"
            )
        return X

    # -- execution -------------------------------------------------------------

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``y = A ×₂ x ×₃ x`` through the compiled structures."""
        x = self._check_vector(x)
        if self.strategy == "gemm":
            return self._operator @ (x[self._pair_j] * x[self._pair_k])
        I, J, K = self._idx
        wa_i, wa_j, wa_k = self._wa
        n = self.n
        y = np.bincount(I, weights=wa_i * x[J] * x[K], minlength=n)
        y += np.bincount(J, weights=wa_j * x[I] * x[K], minlength=n)
        y += np.bincount(K, weights=wa_k * x[I] * x[J], minlength=n)
        return y

    def apply_batch(self, X: np.ndarray) -> np.ndarray:
        """``Y[:, ℓ] = A ×₂ X[:, ℓ] ×₃ X[:, ℓ]`` for all columns at once.

        The gemm strategy evaluates one multi-column GEMM — a single
        pass over the operator regardless of ``s`` — which is how a
        production multi-vector engine amortizes tensor traffic (cf.
        BCSS and Multi-TTM). The bincount strategy falls back to a
        column loop over :meth:`apply` (bitwise equal to it) since no
        memory-bounded batched scatter exists in pure NumPy.
        """
        X = self._check_matrix(X)
        if X.shape[1] == 0:
            return np.zeros((self.n, 0))
        if self.strategy == "gemm":
            Z = X[self._pair_j]
            Z *= X[self._pair_k]
            return self._operator @ Z
        return np.column_stack(
            [self.apply(X[:, col]) for col in range(X.shape[1])]
        )

    # -- derived quantities ----------------------------------------------------

    def frobenius_norm_sq(self) -> float:
        """``||A||²`` over the full cube, from packed storage.

        Each canonical entry counts with its permutation multiplicity,
        which equals ``w_i + w_j + w_k`` of the Algorithm-4 weights.
        """
        if self._norm_sq is None:
            from repro.core.sttsv_sequential import _scatter_plan

            I, J, K, w_i, w_j, w_k = _scatter_plan(self.n)
            self._norm_sq = float(
                np.sum((w_i + w_j + w_k) * self._data**2)
            )
        return self._norm_sq

    def nbytes(self) -> int:
        """Bytes of compiled plan state (excluding the tensor itself)."""
        if self.strategy == "gemm":
            return (
                self._operator.nbytes
                + self._pair_j.nbytes
                + self._pair_k.nbytes
            )
        return sum(a.nbytes for a in self._wa)

    def __repr__(self) -> str:
        return (
            f"SequentialPlan(n={self.n}, strategy={self.strategy!r},"
            f" nbytes={self.nbytes()})"
        )


def _drop_plan_attribute(key: Hashable, ref: "weakref.ref") -> None:
    """Capacity-eviction hook: detach the plan from its tensor."""
    tensor = ref()
    if tensor is not None:
        tensor._plan = None


#: Module-level registry bounding how many compiled plans stay live.
#: Values are weak references to the owning tensors (the cache never
#: keeps a tensor alive); the plan itself lives on ``tensor._plan`` so
#: identity semantics (`sequential_plan(t) is sequential_plan(t)`) are
#: unchanged — the registry only enforces the bound.
_PLAN_CACHE = LRUByteCache(
    maxsize=DEFAULT_PLAN_CACHE_SIZE,
    byte_budget=DEFAULT_PLAN_CACHE_BYTES,
    on_evict=_drop_plan_attribute,
)

_UNSET = object()


def _register_plan(tensor: PackedSymmetricTensor, plan: SequentialPlan) -> None:
    key = id(tensor)
    ref = weakref.ref(tensor, lambda _ref, key=key: _PLAN_CACHE.discard(key))
    _PLAN_CACHE.put(key, ref, plan.nbytes())


def sequential_plan(
    tensor: PackedSymmetricTensor,
    strategy: str = "auto",
    gemm_budget_bytes: int = DEFAULT_GEMM_BUDGET_BYTES,
) -> SequentialPlan:
    """Get (or compile and cache) the plan bound to ``tensor``.

    The plan is cached on the tensor object and invalidated when the
    data array is replaced or an element is written through
    ``tensor[i, j, k] = v``. Direct in-place mutation of
    ``tensor.data`` through NumPy bypasses the guard — call
    :func:`invalidate_plan` afterwards in that case.

    Cache occupancy is bounded: a module-level LRU registry (default
    :data:`DEFAULT_PLAN_CACHE_SIZE` plans / :data:`DEFAULT_PLAN_CACHE_BYTES`
    of compiled state) detaches the coldest plans when a long-lived
    process — the serving layer in particular — touches many tensors.
    Inspect with :func:`cache_info`, drop everything with
    :func:`cache_clear`, retune with :func:`configure_cache`.
    """
    cached: Optional[SequentialPlan] = getattr(tensor, "_plan", None)
    if (
        cached is not None
        and cached.matches(tensor)
        and cached.requested_strategy == strategy
    ):
        if _PLAN_CACHE.get(id(tensor)) is None:
            # Plan attached outside the registry (manual assignment or a
            # cleared cache racing a live reference) — re-admit it.
            _register_plan(tensor, cached)
        return cached
    _PLAN_CACHE.note_miss()
    plan = SequentialPlan(
        tensor, strategy=strategy, gemm_budget_bytes=gemm_budget_bytes
    )
    tensor._plan = plan
    _register_plan(tensor, plan)
    return plan


def invalidate_plan(tensor: PackedSymmetricTensor) -> None:
    """Drop any cached plan (after direct ``tensor.data`` mutation)."""
    tensor._plan = None
    _PLAN_CACHE.discard(id(tensor))


def cache_info() -> CacheInfo:
    """Counters of the module-level plan cache."""
    return _PLAN_CACHE.info()


def cache_clear() -> None:
    """Evict every registered plan (tensors lose their ``_plan``)."""
    _PLAN_CACHE.clear()


def configure_cache(
    maxsize: Any = _UNSET,
    byte_budget: Any = _UNSET,
) -> None:
    """Rebound the plan cache (``None`` disables a dimension); trims
    immediately so a long-lived server can shrink under pressure."""
    _PLAN_CACHE.resize(
        _PLAN_CACHE.maxsize if maxsize is _UNSET else maxsize,
        _PLAN_CACHE.byte_budget if byte_budget is _UNSET else byte_budget,
    )


class BlockedPlan:
    """Compiled order-m blocked-gemm STTSV executor over BCSS storage.

    The order-m sibling of :class:`SequentialPlan`'s gemm strategy: for
    every stored BCSS block and every *distinct* row block ``t`` of its
    canonical tuple, compilation bakes the multiplicity weight into a
    contiguous mode-``t`` unfolding matrix ``(b, b^{m-1})``; each apply
    is then one GEMV per (block, output) pair against the Kronecker
    product of the other modes' ``x`` row blocks — and
    :meth:`apply_batch` turns those GEMVs into GEMMs via the
    column-wise Khatri–Rao product, amortizing tensor traffic exactly
    like the order-3 batched path.

    Accepts an :class:`~repro.tensor.ndpacked.NdPackedSymmetricTensor`
    (padded to a block multiple internally; zero padding is exact) or a
    prebuilt :class:`~repro.tensor.bcss.BCSSTensor`.
    """

    def __init__(self, tensor, block_size: int = None):
        from repro.core.bcss_kernels import kron_vector  # noqa: F401 (API anchor)
        from repro.tensor.bcss import BCSSTensor
        from repro.tensor.multiplicity import nd_contribution_weights
        from repro.tensor.ndpacked import NdPackedSymmetricTensor, pad_ndpacked

        if isinstance(tensor, BCSSTensor):
            bcss = tensor
            self.n = bcss.n
        elif isinstance(tensor, NdPackedSymmetricTensor):
            self.n = tensor.n
            if block_size is None:
                block_size = max(1, min(tensor.n, 16))
            n_padded = -(-tensor.n // block_size) * block_size
            bcss = BCSSTensor.from_ndpacked(
                pad_ndpacked(tensor, n_padded), block_size
            )
        else:
            raise ConfigurationError(
                f"BlockedPlan needs an NdPackedSymmetricTensor or"
                f" BCSSTensor, got {type(tensor).__name__}"
            )
        self.bcss = bcss
        self.m = bcss.m
        self.n_padded = bcss.n
        self.block_size = bcss.block_size
        self.requested_strategy = "blocked-gemm"
        self.strategy = "blocked-gemm"
        # One (output row block, other-mode row blocks, weighted unfold)
        # triple per (stored block, distinct tuple value).
        self._unfolds = []
        b = self.block_size
        for offset in range(bcss.num_blocks):
            block_tuple = tuple(int(v) for v in bcss.block_indices[offset])
            weights = nd_contribution_weights(block_tuple)
            block = bcss.blocks[offset]
            seen = set()
            for position, value in enumerate(block_tuple):
                if value in seen:
                    continue
                seen.add(value)
                others = tuple(
                    block_tuple[mode]
                    for mode in range(self.m)
                    if mode != position
                )
                # The multiply must allocate: at position 0 the reshape
                # is a *view* of the stored block, and scaling it in
                # place would corrupt the block for later unfolds.
                operator = np.ascontiguousarray(
                    np.moveaxis(block, position, 0).reshape(b, -1)
                    * float(weights[value])
                )
                self._unfolds.append((value, others, operator))

    def _pad_columns(self, X: np.ndarray) -> np.ndarray:
        if self.n_padded == self.n:
            return X
        padded = np.zeros((self.n_padded,) + X.shape[1:])
        padded[: self.n] = X
        return padded

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``y = A ×₂ x ··· ×ₘ x`` through the compiled unfoldings."""
        from repro.core.bcss_kernels import kron_vector

        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"vector must have shape ({self.n},), got {x.shape}"
            )
        x = self._pad_columns(x)
        b = self.block_size
        x_blocks = [
            x[i * b : (i + 1) * b] for i in range(self.bcss.nbar)
        ]
        y = np.zeros(self.n_padded)
        for target, others, operator in self._unfolds:
            v = kron_vector([x_blocks[i] for i in others])
            y[target * b : (target + 1) * b] += operator @ v
        return y[: self.n]

    def apply_batch(self, X: np.ndarray) -> np.ndarray:
        """Batched STTSV: one GEMM per (block, output) pair."""
        from repro.core.bcss_kernels import khatri_rao_columns

        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != self.n:
            raise ConfigurationError(
                f"batch must have shape ({self.n}, s), got {X.shape}"
            )
        if X.shape[1] == 0:
            return np.zeros((self.n, 0))
        X = self._pad_columns(X)
        b = self.block_size
        X_blocks = [
            X[i * b : (i + 1) * b] for i in range(self.bcss.nbar)
        ]
        Y = np.zeros((self.n_padded, X.shape[1]))
        for target, others, operator in self._unfolds:
            V = khatri_rao_columns([X_blocks[i] for i in others])
            Y[target * b : (target + 1) * b] += operator @ V
        return Y[: self.n]

    def nbytes(self) -> int:
        """Bytes of compiled plan state (the weighted unfoldings)."""
        return sum(operator.nbytes for _, _, operator in self._unfolds)

    def __repr__(self) -> str:
        return (
            f"BlockedPlan(n={self.n}, m={self.m}, b={self.block_size},"
            f" unfolds={len(self._unfolds)}, nbytes={self.nbytes()})"
        )


class ExchangePlan:
    """Compiled gather/scatter structure for Algorithm 5's exchanges.

    For each ordered neighbor pair of the point-to-point schedule the
    plan precomputes flat index arrays into per-processor staging
    buffers, so each per-call payload is one ``np.take`` into a
    reusable send buffer and each unpack is one fancy-indexed
    assignment — no ``sorted``, no dict-of-slices walk, no
    ``np.concatenate``.

    Buffer layout (per processor ``p``, with ``order = sorted(R_p)``):

    * ``x-shards`` staging: ``order``-concatenated own shards,
      ``r · shard`` doubles;
    * ``x-full`` staging: ``order``-concatenated full row blocks,
      ``r · b`` doubles (every slot is overwritten each run: the own
      shard plus one shard from every other member of each ``Q_i``);
    * ``y-partial`` staging mirrors ``x-full``; ``y-shards`` staging
      mirrors ``x-shards``.

    The plan is purely an execution detail: payload contents, sizes,
    message counts, and round structure are identical to the direct
    dict-walking implementation, so the communication ledger is
    unchanged (tested).
    """

    def __init__(self, partition, schedule, b: int):
        from repro.core import distribution as dist

        self.partition = partition
        self.b = b
        self.shard = partition.shard_size(b)
        P = partition.P
        shard = self.shard
        self.order: List[List[int]] = [sorted(partition.R[p]) for p in range(P)]
        position: List[Dict[int, int]] = [
            {i: t for t, i in enumerate(self.order[p])} for p in range(P)
        ]

        # Own-shard span: positions of p's own shard of each row block
        # inside the block-concatenated (r·b) staging buffer, in
        # ``order``. Used both to seed x-full from x-shards and to
        # extract y-shards from y-partial.
        self.own_span: List[np.ndarray] = []
        for p in range(P):
            spans = []
            for t, i in enumerate(self.order[p]):
                lo, hi = dist.shard_bounds(partition, i, p, b)
                spans.append(np.arange(t * b + lo, t * b + hi))
            self.own_span.append(np.concatenate(spans))

        # Per-pair index arrays (ordered pairs of the exchange graph).
        self.x_gather: Dict[Tuple[int, int], np.ndarray] = {}
        self.x_scatter: Dict[Tuple[int, int], np.ndarray] = {}
        self.y_gather: Dict[Tuple[int, int], np.ndarray] = {}
        self.y_scatter: Dict[Tuple[int, int], np.ndarray] = {}
        self._sendbuf: Dict[Tuple[int, int], np.ndarray] = {}
        for (src, dst), common in schedule.shared.items():
            xg, xs, yg, ys = [], [], [], []
            for i in sorted(common):
                t_src = position[src][i]
                t_dst = position[dst][i]
                # x phase: src ships its own shard of block i; dst
                # places it at src's slot inside its full block i.
                src_lo, src_hi = dist.shard_bounds(partition, i, src, b)
                xg.append(np.arange(t_src * shard, (t_src + 1) * shard))
                xs.append(np.arange(t_dst * b + src_lo, t_dst * b + src_hi))
                # y phase: src ships the slice of its partial block i
                # covering dst's shard; dst accumulates into its shard.
                dst_lo, dst_hi = dist.shard_bounds(partition, i, dst, b)
                yg.append(np.arange(t_src * b + dst_lo, t_src * b + dst_hi))
                ys.append(np.arange(t_dst * shard, (t_dst + 1) * shard))
            self.x_gather[(src, dst)] = np.concatenate(xg)
            self.x_scatter[(src, dst)] = np.concatenate(xs)
            self.y_gather[(src, dst)] = np.concatenate(yg)
            self.y_scatter[(src, dst)] = np.concatenate(ys)
            self._sendbuf[(src, dst)] = np.empty(len(common) * shard)

        r = partition.r
        self._xs = [np.zeros(r * shard) for _ in range(P)]
        self._xf = [np.zeros(r * b) for _ in range(P)]
        self._yp = [np.zeros(r * b) for _ in range(P)]
        self._ys = [np.zeros(r * shard) for _ in range(P)]

        # Readiness tables for the overlap pipeline: after which
        # schedule round is row block ``i`` complete at processor
        # ``p``? A row block is complete once every other member of
        # its ``Q_i`` has delivered its shard, so the answer is the
        # max round index over the contributing ordered pairs
        # ``(src, p)``. Pairs the round list somehow misses (never the
        # case for the repo's schedules, which deliver exactly one
        # message per ordered pair) conservatively pin readiness to
        # the final round.
        last_round = len(schedule.rounds) - 1
        pair_round: Dict[Tuple[int, int], int] = {}
        for index, round_map in enumerate(schedule.rounds):
            for src, dst in round_map.items():
                pair_round[(src, dst)] = index
        self.x_ready_round: List[Dict[int, int]] = [{} for _ in range(P)]
        for (src, dst), common in schedule.shared.items():
            round_index = pair_round.get((src, dst), last_round)
            table = self.x_ready_round[dst]
            for i in common:
                table[i] = max(table.get(i, -1), round_index)
        for p in range(P):
            for i in self.order[p]:
                # Blocks with no external contributor are ready at once.
                self.x_ready_round[p].setdefault(i, -1)

    # -- x phase ---------------------------------------------------------------

    def stage_x(self, p: int, shards: Dict[int, np.ndarray]) -> None:
        """Flatten processor ``p``'s own shard dict into its staging
        buffer (one small copy per owned row block)."""
        buf = self._xs[p]
        shard = self.shard
        for t, i in enumerate(self.order[p]):
            buf[t * shard : (t + 1) * shard] = shards[i]

    def x_payload(self, src: int, dst: int) -> Optional[np.ndarray]:
        """Gathered x payload for ``src -> dst`` (reusable buffer)."""
        idx = self.x_gather.get((src, dst))
        if idx is None:
            return None
        return np.take(self._xs[src], idx, out=self._sendbuf[(src, dst)])

    def seed_x(self, p: int) -> None:
        """Write processor ``p``'s own staged shards into its x-full
        buffer (the received slots are filled by :meth:`scatter_x`)."""
        self._xf[p][self.own_span[p]] = self._xs[p]

    def scatter_x(self, p: int, src: int, payload: np.ndarray) -> None:
        """Place one received x payload into ``p``'s full row blocks.

        Distinct sources write disjoint shard slots, so the overlap
        pipeline may apply deliveries as they arrive; applying them in
        round order reproduces :meth:`unpack_x` write-for-write."""
        idx = self.x_scatter.get((src, p))
        if idx is None:
            return  # pure zero-padding from a non-neighbor
        self._xf[p][idx] = payload[: idx.size]

    def x_block_views(self, p: int) -> Dict[int, np.ndarray]:
        """Row-block views into ``p``'s x-full staging buffer (the
        layout Algorithm 5's local kernels consume)."""
        full = self._xf[p]
        b = self.b
        return {
            i: full[t * b : (t + 1) * b] for t, i in enumerate(self.order[p])
        }

    def unpack_x(
        self, p: int, received: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Assemble full row blocks from own shards + received payloads.

        Returns views into the staging buffer keyed by row block. Every
        slot is overwritten, so no zeroing pass is needed between runs.
        """
        self.seed_x(p)
        for src, payload in received.items():
            self.scatter_x(p, src, payload)
        return self.x_block_views(p)

    # -- y phase ---------------------------------------------------------------

    def stage_y(self, p: int, partial: Dict[int, np.ndarray]) -> None:
        """Flatten processor ``p``'s partial row blocks into staging."""
        buf = self._yp[p]
        b = self.b
        for t, i in enumerate(self.order[p]):
            buf[t * b : (t + 1) * b] = partial[i]

    def y_payload(self, src: int, dst: int) -> Optional[np.ndarray]:
        """Gathered partial-y payload for ``src -> dst``."""
        idx = self.y_gather.get((src, dst))
        if idx is None:
            return None
        return np.take(self._yp[src], idx, out=self._sendbuf[(src, dst)])

    def seed_y(self, p: int) -> None:
        """Start ``p``'s y-shard accumulator from its own partials."""
        np.take(self._yp[p], self.own_span[p], out=self._ys[p])

    def accumulate_y(self, p: int, src: int, payload: np.ndarray) -> None:
        """Add one received partial-y payload into ``p``'s accumulator.

        Float addition order matters bitwise: the overlap pipeline
        calls this in schedule-round order, which is exactly the dict
        insertion order :meth:`reduce_y` sees (each ordered pair
        appears once per phase), so the sums are bit-identical."""
        idx = self.y_scatter.get((src, p))
        if idx is None:
            return  # pure zero-padding from a non-neighbor
        self._ys[p][idx] += payload[: idx.size]

    def finish_y(self, p: int) -> Dict[int, np.ndarray]:
        """Copy out ``p``'s accumulated shards (the algorithm's
        contract: ``y`` ends distributed exactly like ``x`` started)."""
        ys = self._ys[p]
        shard = self.shard
        return {
            i: ys[t * shard : (t + 1) * shard].copy()
            for t, i in enumerate(self.order[p])
        }

    def reduce_y(
        self, p: int, received: Dict[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Sum own partial slices with received contributions."""
        self.seed_y(p)
        for src, payload in received.items():
            self.accumulate_y(p, src, payload)
        return self.finish_y(p)
