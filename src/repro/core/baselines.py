"""Baseline parallel STTSV algorithms for comparison (paper §8 + §2).

Two comparison points bracket Algorithm 5:

* :func:`sequence_baseline_sttsv` — the "sequence" approach the paper
  discusses in §8: compute ``M = A ×₃ x`` then ``y = M x`` on a 1-D
  row-slab distribution. One allgather of ``x`` suffices, costing
  ``n (1 − 1/P)`` words per processor — Θ(n), asymptotically *more*
  communication than Algorithm 5's Θ(n/P^{1/3}) whenever ``P`` grows,
  and it stores the tensor without exploiting symmetry.
* :func:`grid_baseline_sttsv` — a non-symmetric 3-D-grid atomic
  algorithm (the classic cubic distribution for non-symmetric tensor
  kernels): processor ``(a, b, c)`` owns the dense brick
  ``A[a, b, c]`` of the *full* cube, gathers ``x[b]`` and ``x[c]``,
  and reduces its partial ``y[a]``. Per-processor communication is
  Θ(n/P^{1/3}) like the optimal algorithm but with a worse constant,
  and storage is ``n³/P`` — six times Algorithm 5's ``n³/(6P)``.

Both baselines run on the same simulated machine and ledger, so
benchmarks compare *measured* word counts.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError, MachineError
from repro.machine.collectives import all_gather
from repro.machine.machine import Machine
from repro.machine.message import Message
from repro.tensor.packed import PackedSymmetricTensor


# --------------------------------------------------------------------------
# 1-D "sequence" baseline
# --------------------------------------------------------------------------


def _dense_slab(tensor: PackedSymmetricTensor, row_lo: int, row_hi: int) -> np.ndarray:
    """Dense rows ``[row_lo, row_hi)`` of the virtual full cube."""
    n = tensor.n
    rows = np.arange(row_lo, row_hi)
    gi, gj, gk = np.meshgrid(rows, np.arange(n), np.arange(n), indexing="ij")
    stacked = np.stack([gi, gj, gk])
    stacked.sort(axis=0)
    lo, mid, hi = stacked[0], stacked[1], stacked[2]
    offsets = hi * (hi + 1) * (hi + 2) // 6 + mid * (mid + 1) // 2 + lo
    return tensor.data[offsets]


def sequence_baseline_sttsv(
    machine: Machine, tensor: PackedSymmetricTensor, x: np.ndarray
) -> np.ndarray:
    """STTSV via the §8 sequence approach on a 1-D slab distribution.

    Processor ``p`` owns rows ``p·n/P .. (p+1)·n/P`` of the full cube
    (no symmetry exploited) and the matching shard of ``x``. One ring
    allgather replicates ``x``; each processor then computes
    ``M_p = A_p ×₃ x`` followed by ``y_p = M_p x`` locally (the
    2n³ + 2n² elementary-operation sequence the paper describes).

    Requires ``P | n``. Returns the assembled ``y`` (gathered out of
    model for verification); per-processor communication is measured in
    ``machine.ledger``: exactly ``n (1 − 1/P)`` words sent each.
    """
    n = tensor.n
    P = machine.P
    if n % P != 0:
        raise ConfigurationError(f"sequence baseline needs P | n ({P} vs {n})")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},)")
    rows = n // P
    shards = [x[p * rows : (p + 1) * rows] for p in range(P)]
    gathered = all_gather(machine, shards, tag="sequence-x-allgather")
    y = np.empty(n)
    for p in range(P):
        slab = _dense_slab(tensor, p * rows, (p + 1) * rows)
        x_full = np.concatenate(gathered[p])
        intermediate = np.einsum("ijk,k->ij", slab, x_full, optimize=True)
        y[p * rows : (p + 1) * rows] = intermediate @ x_full
    return y


# --------------------------------------------------------------------------
# 3-D grid baseline
# --------------------------------------------------------------------------


def _ring_broadcast(
    machine: Machine,
    participants: Sequence[int],
    root: int,
    value: np.ndarray,
    tag: str,
) -> None:
    """Pipeline (ring) broadcast inside a processor group.

    Every participant except the last sends the full payload once, so
    per-processor bandwidth is ``|value|`` — the relevant metric for the
    baseline comparison. Rounds are sequential single messages.
    """
    order = list(participants)
    if root not in order:
        raise MachineError("broadcast root not in participant group")
    order.remove(root)
    order.insert(0, root)
    words = int(np.asarray(value).size)
    for src, dst in zip(order, order[1:]):
        machine.ledger.begin_round(f"{tag}:hop")
        machine.ledger.record(Message(src, dst, words, tag))
        machine.ledger.end_round()


def _ring_reduce(
    machine: Machine,
    participants: Sequence[int],
    root: int,
    arrays: List[np.ndarray],
    tag: str,
) -> np.ndarray:
    """Chain reduction of one array per participant to ``root``.

    Each non-root participant sends the running partial sum once
    (``|array|`` words); the root only receives.
    """
    order = [p for p in participants if p != root] + [root]
    by_rank = dict(zip(participants, arrays))
    running = by_rank[order[0]].copy()
    words = int(running.size)
    for src, dst in zip(order, order[1:]):
        machine.ledger.begin_round(f"{tag}:hop")
        machine.ledger.record(Message(src, dst, words, tag))
        machine.ledger.end_round()
        running = running + by_rank[dst]
    return running


def grid_side(P: int) -> int:
    """The grid side ``g`` with ``P = g³``; raises if ``P`` is not a cube."""
    g = round(P ** (1.0 / 3.0))
    for candidate in (g - 1, g, g + 1):
        if candidate > 0 and candidate**3 == P:
            return candidate
    raise ConfigurationError(f"grid baseline needs a cubic P, got {P}")


def grid_baseline_sttsv(
    machine: Machine, tensor: PackedSymmetricTensor, x: np.ndarray
) -> np.ndarray:
    """Non-symmetric 3-D-grid atomic STTSV.

    Layout: with ``P = g³`` and ``g | n``, processor ``(a, b, c)``
    (rank ``a g² + b g + c``) owns dense brick
    ``A[a·h:(a+1)h, b·h:(b+1)h, c·h:(c+1)h]`` with ``h = n/g``. Row
    block ``x[j]`` starts on the diagonal processor ``(j, j, j)`` (one
    copy of ``x`` machine-wide), is broadcast to the ``2g² − g``
    processors whose brick touches mode-2 or mode-3 slot ``j``, and the
    partial outputs ``y[a]`` are chain-reduced over each mode-1 plane
    back to ``(a, a, a)``.

    Per-processor send volume is ≈ ``3 n/g = 3 n/P^{1/3}`` (two
    broadcast forwards plus one reduction hop) versus Algorithm 5's
    ``2 n/P^{1/3}``, with ``n³/P`` words of tensor storage versus
    ``n³/(6P)`` and no symmetry savings in flops.
    """
    n = tensor.n
    P = machine.P
    g = grid_side(P)
    if n % g != 0:
        raise ConfigurationError(f"grid baseline needs g | n ({g} vs {n})")
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},)")
    h = n // g

    def rank(a: int, b: int, c: int) -> int:
        return a * g * g + b * g + c

    # Phase 1: broadcast each x[j] from its diagonal owner to all
    # processors whose brick needs it in mode 2 or mode 3.
    for j in range(g):
        group = sorted(
            {rank(a, j, c) for a in range(g) for c in range(g)}
            | {rank(a, b, j) for a in range(g) for b in range(g)}
        )
        _ring_broadcast(
            machine, group, rank(j, j, j), x[j * h : (j + 1) * h], f"grid-x{j}"
        )

    # Phase 2 + 3: per mode-1 plane, compute partial y[a] on each brick
    # and chain-reduce to the diagonal processor (a, a, a).
    y = np.empty(n)
    for a in range(g):
        partials: List[np.ndarray] = []
        participants: List[int] = []
        for b in range(g):
            for c in range(g):
                rows = np.arange(a * h, (a + 1) * h)
                cols = np.arange(b * h, (b + 1) * h)
                fibs = np.arange(c * h, (c + 1) * h)
                gi, gj, gk = np.meshgrid(rows, cols, fibs, indexing="ij")
                stacked = np.stack([gi, gj, gk])
                stacked.sort(axis=0)
                low, mid, high = stacked[0], stacked[1], stacked[2]
                offsets = (
                    high * (high + 1) * (high + 2) // 6 + mid * (mid + 1) // 2 + low
                )
                brick = tensor.data[offsets]
                partials.append(
                    np.einsum(
                        "ijk,j,k->i",
                        brick,
                        x[b * h : (b + 1) * h],
                        x[c * h : (c + 1) * h],
                        optimize=True,
                    )
                )
                participants.append(rank(a, b, c))
        y[a * h : (a + 1) * h] = _ring_reduce(
            machine, participants, rank(a, a, a), partials, f"grid-y{a}"
        )
    return y
