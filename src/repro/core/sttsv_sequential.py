"""Sequential STTSV kernels (paper Algorithms 3 and 4).

``y = A ×₂ x ×₃ x`` with ``y_i = Σ_{j,k} a_ijk x_j x_k``. Three
implementations with identical results:

* :func:`sttsv_naive` — Algorithm 3, literal triple loop over the full
  cube (``n³`` ternary multiplications); reference fidelity only.
* :func:`sttsv_symmetric` — Algorithm 4, literal loop over the lower
  tetrahedron with the paper's four-way case split
  (``n²(n+1)/2`` ternary multiplications).
* :func:`sttsv_packed` — vectorized Algorithm 4: three weighted
  scatter-adds over the packed entry list; this is the production
  kernel (NumPy-speed, no Python-level inner loop).

Plus :func:`sttsv_dense_reference`, a one-line einsum used as the
independent oracle in tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.tensor.multiplicity import contribution_weights
from repro.tensor.packed import PackedSymmetricTensor


def _check_vector(x: np.ndarray, n: int) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ConfigurationError(f"vector must have shape ({n},), got {x.shape}")
    return x


def sttsv_dense_reference(dense: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Oracle: ``y_i = Σ_{j,k} a_ijk x_j x_k`` via einsum on a dense cube."""
    dense = np.asarray(dense, dtype=np.float64)
    x = _check_vector(x, dense.shape[0])
    return np.einsum("ijk,j,k->i", dense, x, x)


def sttsv_naive(dense: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Algorithm 3: all ``n³`` ternary multiplications, scalar loops.

    Faithful to the paper's pseudocode; use only at test scale.
    """
    dense = np.asarray(dense, dtype=np.float64)
    n = dense.shape[0]
    x = _check_vector(x, n)
    y = np.zeros(n)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                y[i] += dense[i, j, k] * x[j] * x[k]
    return y


def sttsv_symmetric(tensor: PackedSymmetricTensor, x: np.ndarray) -> np.ndarray:
    """Algorithm 4: lower tetrahedron only, explicit case split.

    Performs exactly ``n²(n+1)/2`` ternary multiplications (3 per
    strict-lower entry, 2 per non-central diagonal entry, 1 per central
    diagonal entry) — the count asserted by
    :func:`repro.util.combinatorics.ternary_multiplication_count_symmetric`.
    """
    n = tensor.n
    x = _check_vector(x, n)
    y = np.zeros(n)
    for i, j, k, a in tensor.canonical_entries():
        if i != j and j != k:
            y[i] += 2 * a * x[j] * x[k]
            y[j] += 2 * a * x[i] * x[k]
            y[k] += 2 * a * x[i] * x[j]
        elif i == j and j != k:
            y[i] += 2 * a * x[j] * x[k]
            y[k] += a * x[i] * x[j]
        elif i != j and j == k:
            y[i] += a * x[j] * x[k]
            y[j] += 2 * a * x[i] * x[k]
        else:
            y[i] += a * x[j] * x[k]
    return y


@lru_cache(maxsize=32)
def _scatter_plan(n: int) -> Tuple[np.ndarray, ...]:
    """Cached index arrays + Algorithm-4 weights for dimension ``n``."""
    I, J, K = PackedSymmetricTensor.index_arrays(n)
    w_i, w_j, w_k = contribution_weights(I, J, K)
    return I, J, K, w_i, w_j, w_k


def sttsv_packed(tensor: PackedSymmetricTensor, x: np.ndarray) -> np.ndarray:
    """Vectorized Algorithm 4 over packed storage.

    The three case-split updates become three weighted scatter-adds,
    with weights zeroed where a duplicate output index would
    double-count (see
    :func:`repro.tensor.multiplicity.contribution_weights`). Identical
    floating-point contributions to :func:`sttsv_symmetric` up to
    summation order.
    """
    n = tensor.n
    x = _check_vector(x, n)
    I, J, K, w_i, w_j, w_k = _scatter_plan(n)
    a = tensor.data
    y = np.zeros(n)
    np.add.at(y, I, w_i * a * x[J] * x[K])
    np.add.at(y, J, w_j * a * x[I] * x[K])
    np.add.at(y, K, w_k * a * x[I] * x[J])
    return y


def sttsv_packed_bincount(
    tensor: PackedSymmetricTensor, x: np.ndarray
) -> np.ndarray:
    """Vectorized Algorithm 4 using ``np.bincount`` scatter-reduction.

    Mathematically identical to :func:`sttsv_packed`; ``bincount`` with
    float weights is typically several times faster than ``np.add.at``
    on large entry lists because it avoids the generalized-ufunc
    dispatch per index (see ``benchmarks/bench_sequential_kernels.py``).
    """
    n = tensor.n
    x = _check_vector(x, n)
    I, J, K, w_i, w_j, w_k = _scatter_plan(n)
    a = tensor.data
    y = np.bincount(I, weights=w_i * a * x[J] * x[K], minlength=n)
    y += np.bincount(J, weights=w_j * a * x[I] * x[K], minlength=n)
    y += np.bincount(K, weights=w_k * a * x[I] * x[J], minlength=n)
    return y


def sttsv(tensor: PackedSymmetricTensor, x: np.ndarray) -> np.ndarray:
    """Public entry point: the fastest exact sequential kernel.

    Compiles (and caches on the tensor) an execution plan so repeated
    products against the same tensor — the shape of every iterative
    driver in :mod:`repro.apps` — skip all ``x``-independent work. See
    :mod:`repro.core.plans` for strategy selection and the batched
    multi-vector entry point ``sequential_plan(tensor).apply_batch(X)``.
    """
    from repro.core.plans import sequential_plan  # deferred: avoids cycle

    return sequential_plan(tensor).apply(x)


def ttv_all_modes(tensor: PackedSymmetricTensor, x: np.ndarray) -> float:
    """``A ×₁ x ×₂ x ×₃ x`` — the scalar used for λ in Algorithm 1 line 8.

    For a symmetric tensor this is ``xᵀ (A ×₂ x ×₃ x) = xᵀ y``.
    """
    return float(np.dot(_check_vector(x, tensor.n), sttsv(tensor, x)))
