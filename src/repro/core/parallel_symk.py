"""Parallel low-rank symmetric TTSV: O(r) words per processor.

The dense Algorithm 5 moves row-block *shards* — ``Θ(n/q)`` words per
processor, the paper's ``2(n(q+1)/(q²+1) − n/P)`` closed form. A
rank-``r`` symmetric Kruskal tensor collapses the exchange to a single
``r``-vector: with ``V``'s rows 1D-block-distributed, processor ``p``
holds the row block ``V_p`` (``b × r``) and its slice ``x_p`` of the
input, computes the *partial inner products* ``z_p = V_pᵀ x_p`` —
``r`` words — and the only communication in the whole TTSV is
all-gathering those partials:

::

    z = Σ_p z_p = Vᵀx            after one r-word all-gather
    y_p = V_p (λ ⊙ z^{m−1})      local, no further exchange

**Closed-form ledger (derived here, pinned by the conformance suite).**
Both comm variants route every byte through the same
:func:`~repro.machine.collectives.execute_round` funnel as the dense
path, so the algorithmic ledger is exact and transport-independent:

* ``point-to-point`` — the ring allgather relays one ``r``-word piece
  per step for ``P − 1`` steps: every processor sends exactly ``r``
  words per step, so ``words/proc = (P − 1) · r`` in ``P − 1`` rounds.
* ``all-to-all`` — every processor sends its own ``z_p`` directly to
  each of the ``P − 1`` others: the same ``(P − 1) · r`` words, in one
  logical shift-round family (one fused exchange when fusion is on).

:func:`symk_words_per_processor` is that closed form; fault injection
can add ``retry_*`` side-channel rounds and fusion adds ``fused_*``
framing, but — exactly as for the dense conformance tier — neither
ever moves the algorithmic count.

**Determinism contract.** The reduction ``z = Σ_p z_p`` is performed
identically on every processor, in rank order ``0, 1, …, P − 1``, on
the gathered copies (which the machine layer delivers bitwise). So the
distributed result is a pure function of the resident blocks and ``P``
— independent of transport, fusion, faults, and comm variant —
and :meth:`ParallelSymKTTSV.serial_reference` replays the identical
kernel sequence in one process to give the bitwise-equal serial
answer the property suite asserts against.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.parallel_sttsv import CommBackend
from repro.errors import ConfigurationError
from repro.machine.collectives import all_gather, all_to_all
from repro.machine.machine import Machine
from repro.tensor.symk import SymKTensor

__all__ = ["ParallelSymKTTSV", "symk_words_per_processor"]


def symk_words_per_processor(P: int, r: int) -> int:
    """Exact per-processor send volume of one low-rank TTSV.

    One all-gather of uniform ``r``-word partial sums: ``(P − 1) · r``
    for both comm variants (see the module docstring for the
    derivation). ``P = 1`` communicates nothing.
    """
    if P < 1 or r < 1:
        raise ConfigurationError(f"need P >= 1 and r >= 1, got P={P}, r={r}")
    return (P - 1) * r


class ParallelSymKTTSV:
    """Distributed TTSV of a :class:`SymKTensor` over ``P`` processors.

    Rows of ``V`` (and of ``x``/``y``) are 1D-block-distributed in
    ``b = ⌈n/P⌉``-row blocks, zero-padded to ``P · b``; the weight
    vector ``λ`` (``r`` words) is replicated. Unlike the dense path,
    ``P`` is a free knob — no Steiner structure is required — so the
    serving layer can reuse the dense family's ``P`` for side-by-side
    pricing, or pick any other.
    """

    def __init__(
        self,
        P: int,
        n: int,
        order: int = 3,
        backend: CommBackend = CommBackend.POINT_TO_POINT,
    ):
        if P < 1:
            raise ConfigurationError(f"need P >= 1, got {P}")
        if n < 1:
            raise ConfigurationError(f"need n >= 1, got {n}")
        if order < 2:
            raise ConfigurationError(f"order must be >= 2, got {order}")
        self.P = P
        self.n = n
        self.m = int(order)
        self.backend = CommBackend(backend)
        self.b = -(-n // P)
        self.n_padded = self.b * P
        self._lambda: Optional[np.ndarray] = None
        self._V_blocks: Optional[List[np.ndarray]] = None
        self._x_blocks: Optional[List[np.ndarray]] = None
        self._y_blocks: Optional[List[np.ndarray]] = None

    # -- loading (out of the communication model, like load_tensor) --------------

    def load_factors(self, machine: Machine, tensor: SymKTensor) -> None:
        """Distribute ``V``'s row blocks and replicate ``λ``."""
        self._check_machine(machine)
        if tensor.n != self.n or tensor.m != self.m:
            raise ConfigurationError(
                f"tensor is n={tensor.n}, m={tensor.m}; algorithm built for"
                f" n={self.n}, m={self.m}"
            )
        padded = np.zeros((self.n_padded, tensor.r))
        padded[: self.n] = tensor.V
        self._lambda = tensor.lambda_.copy()
        self._V_blocks = [
            np.ascontiguousarray(padded[p * self.b : (p + 1) * self.b])
            for p in range(self.P)
        ]
        self._y_blocks = None

    def load_vector(self, machine: Machine, x: np.ndarray) -> None:
        self._check_machine(machine)
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"x must have shape ({self.n},), got {x.shape}"
            )
        padded = np.zeros(self.n_padded)
        padded[: self.n] = x
        self._x_blocks = [
            padded[p * self.b : (p + 1) * self.b].copy()
            for p in range(self.P)
        ]

    def load(self, machine: Machine, tensor: SymKTensor, x: np.ndarray) -> None:
        self.load_factors(machine, tensor)
        self.load_vector(machine, x)

    @property
    def r(self) -> int:
        """Current resident rank (grows under streaming updates)."""
        if self._lambda is None:
            raise ConfigurationError("no factors loaded")
        return int(self._lambda.shape[0])

    # -- streaming updates -------------------------------------------------------

    def rank1_update(self, weight: float, vector: np.ndarray) -> int:
        """Fold ``weight · vector^{⊗m}`` into the resident blocks.

        Appends one column to every row block (and one weight), exactly
        mirroring :meth:`SymKTensor.rank1_update` — so the resident
        state after ``k`` streamed updates is byte-identical to a fresh
        :meth:`load_factors` of the rebuilt tensor, and the next TTSV
        is bitwise the rebuild's. Returns the new rank.
        """
        if self._lambda is None or self._V_blocks is None:
            raise ConfigurationError("no factors loaded")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.n,):
            raise ConfigurationError(
                f"update vector must have shape ({self.n},), got"
                f" {vector.shape}"
            )
        padded = np.zeros(self.n_padded)
        padded[: self.n] = vector
        self._lambda = np.concatenate(
            [self._lambda, np.asarray([float(weight)])]
        )
        self._V_blocks = [
            np.ascontiguousarray(
                np.concatenate(
                    [block, padded[p * self.b : (p + 1) * self.b, None]],
                    axis=1,
                )
            )
            for p, block in enumerate(self._V_blocks)
        ]
        return self.r

    # -- execution ---------------------------------------------------------------

    def run(self, machine: Machine) -> None:
        """One distributed TTSV on the loaded factors and vector."""
        self._check_machine(machine)
        if self._lambda is None or self._V_blocks is None:
            raise ConfigurationError("no factors loaded")
        if self._x_blocks is None:
            raise ConfigurationError("no vector loaded")
        with machine.instrument.span("symk:run"):
            with machine.instrument.span("symk:local-partials"):
                partials = [
                    self._V_blocks[p].T @ self._x_blocks[p]
                    for p in range(self.P)
                ]
            with machine.instrument.span("symk:z-exchange"):
                gathered = self._exchange(machine, partials)
            with machine.instrument.span("symk:local-output"):
                self._y_blocks = []
                for p in range(self.P):
                    z = self._reduce(gathered[p])
                    w = self._lambda * z ** (self.m - 1)
                    self._y_blocks.append(self._V_blocks[p] @ w)

    def _exchange(
        self, machine: Machine, partials: List[np.ndarray]
    ) -> List[List[np.ndarray]]:
        if self.P == 1:
            return [[partials[0].copy()]]
        if self.backend is CommBackend.POINT_TO_POINT:
            return all_gather(machine, partials, tag="symk-z")
        sendbufs = [
            {dst: partials[src] for dst in range(self.P)}
            for src in range(self.P)
        ]
        recv = all_to_all(machine, sendbufs, tag="symk-z")
        return [
            [recv[p][src] for src in range(self.P)] for p in range(self.P)
        ]

    @staticmethod
    def _reduce(pieces: List[np.ndarray]) -> np.ndarray:
        # Rank-order chain sum, identical on every processor: the one
        # place the P-dependent grouping of Vᵀx is decided, and the
        # reason serial_reference can replay the run bitwise.
        z = pieces[0].copy()
        for piece in pieces[1:]:
            z += piece
        return z

    def gather_result(self, machine: Machine) -> np.ndarray:
        self._check_machine(machine)
        if self._y_blocks is None:
            raise ConfigurationError("run() has not produced a result")
        return np.concatenate(self._y_blocks)[: self.n]

    # -- references and costs ----------------------------------------------------

    def serial_reference(self, x: np.ndarray) -> np.ndarray:
        """Single-process replay of the distributed kernel sequence on
        the *resident* blocks (including streamed updates): bitwise
        identical to ``run`` + ``gather_result`` on any backend, with
        or without faults and fusion."""
        if self._lambda is None or self._V_blocks is None:
            raise ConfigurationError("no factors loaded")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n,):
            raise ConfigurationError(
                f"x must have shape ({self.n},), got {x.shape}"
            )
        padded = np.zeros(self.n_padded)
        padded[: self.n] = x
        partials = [
            self._V_blocks[p].T @ padded[p * self.b : (p + 1) * self.b]
            for p in range(self.P)
        ]
        z = self._reduce(partials)
        w = self._lambda * z ** (self.m - 1)
        return np.concatenate(
            [self._V_blocks[p] @ w for p in range(self.P)]
        )[: self.n]

    def expected_words_per_processor(self) -> int:
        """The closed form the executed ledger must match exactly:
        ``(P − 1) · r`` (see :func:`symk_words_per_processor`)."""
        if self.P == 1:
            return 0
        return symk_words_per_processor(self.P, self.r)

    def expected_rounds(self) -> int:
        """Algorithmic round count: ``P − 1`` for both variants (ring
        steps / all-to-all shifts)."""
        return max(0, self.P - 1)

    def _check_machine(self, machine: Machine) -> None:
        if machine.P != self.P:
            raise ConfigurationError(
                f"machine has {machine.P} processors, algorithm built for"
                f" {self.P}"
            )
