"""Structured end-to-end verification of a parallel STTSV run.

Bundles the three checks every experiment repeats — numerical
correctness against the sequential kernel, ledger-vs-closed-form
equality, and lower-bound consistency plus a model audit — into one
:class:`RunVerdict` consumed by the CLI (``analyze --audit``) and by
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.bounds import sttsv_lower_bound
from repro.core.parallel_sttsv import CommBackend, ParallelSTTSV
from repro.core.partition import TetrahedralPartition
from repro.core.sttsv_sequential import sttsv_packed
from repro.machine.auditing import AuditReport, audit_ledger
from repro.machine.machine import Machine
from repro.machine.recovery import RecoveryPolicy
from repro.machine.transport import Transport
from repro.tensor.packed import PackedSymmetricTensor


@dataclass
class RunVerdict:
    """Everything a referee would ask about one simulated run."""

    backend: str
    n: int
    n_padded: int
    P: int
    max_error: float
    words_per_processor: int
    expected_words: int
    lower_bound: float
    rounds: int
    audit: AuditReport
    problems: List[str] = field(default_factory=list)
    transport: str = "simulated"
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    # Recovery side-channel (DESIGN.md §8): cost of redelivering faulty
    # transfers, kept apart from the algorithmic counts above.
    retry_rounds: int = 0
    retry_words: int = 0
    retry_messages: int = 0
    failed_over: bool = False
    warnings: List[str] = field(default_factory=list)
    # Fusion side-channel (DESIGN.md §11): what the transport
    # physically moved when batches of rounds were fused — the
    # algorithmic counts above always describe the unfused schedule.
    fusion: bool = True
    fusion_summary: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Run is numerically correct, cost-exact, bound-consistent and
        model-clean."""
        return not self.problems and self.audit.ok

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.backend}: n={self.n} P={self.P}"
            f" words={self.words_per_processor}"
            f" (formula {self.expected_words}, bound {self.lower_bound:.1f})"
            f" rounds={self.rounds} err={self.max_error:.2e}"
        )


def verify_sttsv_run(
    partition: TetrahedralPartition,
    tensor: PackedSymmetricTensor,
    x: np.ndarray,
    backend: CommBackend = CommBackend.POINT_TO_POINT,
    *,
    tolerance: float = 1e-9,
    transport: Optional[Transport] = None,
    recovery: Optional[RecoveryPolicy] = None,
    fusion: bool = True,
) -> RunVerdict:
    """Execute Algorithm 5 and return the full verdict.

    ``transport`` selects who moves the bytes (default: in-process
    simulation); the ledger checks are transport-independent — in
    particular the ledger-vs-formula equality holds even under an
    injected-fault transport, because redelivery cost is accounted in
    the verdict's ``retry_*`` fields, never in ``words_sent``.
    ``recovery`` bounds the retry loop (defaults to the machine's
    default policy). ``fusion`` toggles the fusing scheduler (default
    on); the algorithmic ledger checks hold identically either way —
    fusion only changes the ``fusion_summary`` side-channel. The
    caller owns the transport's lifecycle (``close()``).
    """
    machine = Machine(
        partition.P, transport=transport, recovery=recovery, fusion=fusion
    )
    algo = ParallelSTTSV(partition, tensor.n, backend)
    algo.load(machine, tensor, x)
    algo.run(machine)
    result = algo.gather_result(machine)
    reference = sttsv_packed(tensor, x)
    scale = float(np.max(np.abs(reference))) or 1.0
    max_error = float(np.max(np.abs(result - reference)))

    expected = algo.expected_words_per_processor()
    lower = sttsv_lower_bound(algo.n_padded, partition.P)
    audit = audit_ledger(machine.ledger)

    problems: List[str] = []
    if max_error > tolerance * scale:
        problems.append(f"numerical error {max_error:.2e} above tolerance")
    if machine.ledger.words_sent != [expected] * partition.P:
        problems.append(
            f"ledger {machine.ledger.max_words_sent()} != formula {expected}"
        )
    if expected + 1e-9 < lower:
        problems.append(
            f"cost {expected} below the Theorem 5.2 bound {lower:.1f}"
            " — accounting bug"
        )
    return RunVerdict(
        backend=backend.value,
        n=tensor.n,
        n_padded=algo.n_padded,
        P=partition.P,
        max_error=max_error,
        words_per_processor=machine.ledger.max_words_sent(),
        expected_words=expected,
        lower_bound=lower,
        rounds=machine.ledger.round_count(),
        audit=audit,
        problems=problems,
        transport=machine.transport.name,
        phase_seconds={
            name: timing.total_seconds
            for name, timing in machine.instrument.timings().items()
        },
        retry_rounds=machine.ledger.retry_rounds,
        retry_words=machine.ledger.retry_words,
        retry_messages=machine.ledger.retry_messages,
        failed_over=machine.failed_over,
        warnings=list(machine.instrument.warnings),
        fusion=machine.fusion,
        fusion_summary=machine.ledger.fusion_summary(),
    )
