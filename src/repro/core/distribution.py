"""Initial and final data distributions for Algorithm 5 (paper §6.1).

Conventions (all 0-based):

* the input vector ``x`` of (padded) length ``n = m · b`` is split into
  ``m`` row blocks ``x[i]`` of length ``b``;
* row block ``i`` is needed by the processors ``Q_i``; it is split into
  ``|Q_i|`` contiguous shards of length ``b / |Q_i|``; the shard of
  processor ``p ∈ Q_i`` is the one at ``p``'s position within the
  sorted ``Q_i`` (the paper's ``x[i]^{(p)}``);
* each processor therefore starts with ``r · b/|Q_i| = n/P`` elements
  of ``x`` and ends with the same count of ``y`` — exactly one copy of
  each vector exists across the machine, as Theorem 5.2 assumes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.partition import TetrahedralPartition
from repro.errors import PartitionError


def pad_vector(x: np.ndarray, padded_length: int) -> np.ndarray:
    """Zero-pad ``x`` to ``padded_length`` (identity if already there)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size > padded_length:
        raise PartitionError(
            f"cannot pad shape {x.shape} to length {padded_length}"
        )
    if x.size == padded_length:
        return x
    out = np.zeros(padded_length)
    out[: x.size] = x
    return out


def shard_bounds(
    partition: TetrahedralPartition, i: int, p: int, b: int
) -> Tuple[int, int]:
    """Within-row-block index range ``[lo, hi)`` of ``p``'s shard of
    row block ``i``."""
    size = partition.shard_size(b)
    position = partition.shard_owner_position(i, p)
    return position * size, (position + 1) * size


def initial_shards(
    partition: TetrahedralPartition, x: np.ndarray, b: int
) -> List[Dict[int, np.ndarray]]:
    """Split ``x`` into per-processor shard dictionaries.

    Returns ``shards[p][i]`` — the shard of row block ``i`` owned by
    processor ``p`` — for every ``p`` and every ``i ∈ R_p``. The input
    must already have padded length ``m · b``.
    """
    m, P = partition.m, partition.P
    if x.shape != (m * b,):
        raise PartitionError(f"expected padded vector of length {m * b}")
    shards: List[Dict[int, np.ndarray]] = [{} for _ in range(P)]
    for i in range(m):
        row = x[i * b : (i + 1) * b]
        for p in partition.Q[i]:
            lo, hi = shard_bounds(partition, i, p, b)
            shards[p][i] = row[lo:hi].copy()
    return shards


def assemble_vector(
    partition: TetrahedralPartition,
    shards: List[Dict[int, np.ndarray]],
    b: int,
    original_length: int = None,
) -> np.ndarray:
    """Reassemble a full vector from per-processor shards (verification).

    Inverse of :func:`initial_shards`; checks that every shard slot is
    populated exactly once.
    """
    m = partition.m
    out = np.full(m * b, np.nan)
    for p, owned in enumerate(shards):
        for i, shard in owned.items():
            lo, hi = shard_bounds(partition, i, p, b)
            segment = out[i * b + lo : i * b + hi]
            if not np.all(np.isnan(segment)):
                raise PartitionError(
                    f"shard ({i}, {p}) overlaps an already-filled slot"
                )
            out[i * b + lo : i * b + hi] = shard
    if np.any(np.isnan(out)):
        raise PartitionError("missing shards: assembled vector incomplete")
    if original_length is not None:
        out = out[:original_length]
    return out


def owned_element_count(partition: TetrahedralPartition, p: int, b: int) -> int:
    """Elements of each vector initially owned by processor ``p``
    (``n/P`` for the spherical family)."""
    return sum(
        shard_bounds(partition, i, p, b)[1] - shard_bounds(partition, i, p, b)[0]
        for i in partition.R[p]
    )
