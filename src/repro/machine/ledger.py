"""Exact communication accounting for the simulated machine.

The ledger records every :class:`~repro.machine.message.Message`
grouped into synchronous *rounds* (the paper's communication steps:
each processor sends at most one and receives at most one message per
round, Theorem 7.2). From the raw records it derives the quantities
the paper's analysis is stated in:

* per-processor words sent / received (bandwidth cost, §7.2),
* per-processor message counts (latency cost),
* number of rounds,
* the α-β critical-path estimate ``Σ_rounds (α + β · max_words)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MachineError
from repro.machine.message import Message


@dataclass
class RoundRecord:
    """All messages of one synchronous communication round."""

    label: str
    messages: List[Message] = field(default_factory=list)
    #: True iff this logical round was covered by a fused physical
    #: exchange (set by :meth:`CommunicationLedger.record_fusion`).
    #: The flag never changes the algorithmic counts — it exists so
    #: time estimates can price the *unfused remainder* of a mixed
    #: ledger exactly instead of averaging.
    fused: bool = False

    def max_words(self) -> int:
        """Largest per-processor send volume within the round."""
        per_proc: Dict[int, int] = {}
        for msg in self.messages:
            per_proc[msg.source] = per_proc.get(msg.source, 0) + msg.words
        return max(per_proc.values(), default=0)

    def is_permutation_round(self) -> bool:
        """True iff every processor sends <= 1 and receives <= 1 message."""
        senders = [m.source for m in self.messages]
        receivers = [m.dest for m in self.messages]
        return len(senders) == len(set(senders)) and len(receivers) == len(
            set(receivers)
        )


class CommunicationLedger:
    """Accumulates messages for a ``P``-processor run."""

    def __init__(self, n_processors: int):
        if n_processors < 1:
            raise MachineError("need at least one processor")
        self.P = n_processors
        self.words_sent: List[int] = [0] * n_processors
        self.words_received: List[int] = [0] * n_processors
        self.messages_sent: List[int] = [0] * n_processors
        self.messages_received: List[int] = [0] * n_processors
        self.rounds: List[RoundRecord] = []
        self._open_round: Optional[RoundRecord] = None
        # Recovery side-channel: redelivery cost after transport faults.
        # Kept out of words_sent / rounds so the algorithmic counts the
        # paper's closed forms are asserted against never move.
        self.retry_rounds = 0
        self.retry_words = 0
        self.retry_messages = 0
        # Fusion side-channel: what the transport *physically* moved
        # when the fusing scheduler packed a batch of logical rounds
        # into per-destination group buffers. Same contract as retry_*:
        # the algorithmic counters above always describe the unfused
        # logical schedule, so the closed-form assertions never move.
        self.fused_rounds = 0
        self.fused_messages = 0
        self.fused_words = 0
        self.fused_logical_rounds = 0
        self.fused_logical_messages = 0
        self.fused_logical_words = 0

    # -- round management ------------------------------------------------------

    def begin_round(self, label: str = "") -> None:
        """Open a new synchronous round; messages recorded until
        :meth:`end_round` belong to it."""
        if self._open_round is not None:
            raise MachineError("previous round still open")
        self._open_round = RoundRecord(label=label)

    def end_round(self) -> RoundRecord:
        """Close the current round and archive it."""
        if self._open_round is None:
            raise MachineError("no round open")
        closed = self._open_round
        self._open_round = None
        self.rounds.append(closed)
        return closed

    def record(self, message: Message) -> None:
        """Record one message (a round must be open)."""
        if self._open_round is None:
            raise MachineError("record() outside of a round")
        if not (0 <= message.source < self.P and 0 <= message.dest < self.P):
            raise MachineError(f"message {message} references unknown processor")
        self._open_round.messages.append(message)
        self.words_sent[message.source] += message.words
        self.words_received[message.dest] += message.words
        self.messages_sent[message.source] += 1
        self.messages_received[message.dest] += 1

    def record_retry(self, words: int, messages: int) -> None:
        """Account one recovery round (re-execution of failed transfers).

        Retries are real traffic on a faulty network, but they are not
        part of the algorithm's schedule — they accumulate here instead
        of the per-processor counters so ``words_sent`` etc. stay equal
        to the closed forms while the recovery cost stays visible.
        """
        if words < 0 or messages < 0:
            raise MachineError("negative retry accounting")
        self.retry_rounds += 1
        self.retry_words += words
        self.retry_messages += messages

    def record_fusion(
        self,
        *,
        physical_messages: int,
        physical_words: int,
        logical_rounds: int,
        logical_messages: int,
        logical_words: int,
    ) -> None:
        """Account one fused physical exchange covering a batch of
        logical rounds.

        The logical rounds were already priced into the algorithmic
        counters individually (labels and order unchanged); this
        side-channel records what actually crossed the transport — one
        header-framed buffer per active destination — so fusion savings
        are observable without perturbing the closed-form counts.

        The ``logical_rounds`` most recently completed rounds are
        additionally tagged ``fused`` (they are exactly the rounds the
        caller just priced through
        :meth:`~repro.machine.cost.CostModel.price_fused_batch`), so
        mixed fused/unfused ledgers can be timed exactly: the unfused
        remainder is whatever rounds carry no tag.
        """
        if min(
            physical_messages,
            physical_words,
            logical_rounds,
            logical_messages,
            logical_words,
        ) < 0:
            raise MachineError("negative fusion accounting")
        if logical_rounds > len(self.rounds):
            raise MachineError(
                f"fusion batch claims {logical_rounds} logical rounds but"
                f" the ledger holds only {len(self.rounds)} — price the"
                " batch's rounds before recording its fusion"
            )
        for record in self.rounds[len(self.rounds) - logical_rounds :]:
            record.fused = True
        self.fused_rounds += 1
        self.fused_messages += physical_messages
        self.fused_words += physical_words
        self.fused_logical_rounds += logical_rounds
        self.fused_logical_messages += logical_messages
        self.fused_logical_words += logical_words

    def fusion_summary(self) -> Dict[str, int]:
        """Logical-vs-physical message accounting of every fused batch.

        ``messages_logical`` / ``words_logical`` count only the rounds
        that went through the fusing scheduler (the algorithmic totals
        live in ``messages_sent`` / ``words_sent``); the reduction
        factor is therefore an apples-to-apples physical comparison.
        """
        return {
            "fused_rounds": self.fused_rounds,
            "messages_fused": self.fused_messages,
            "messages_logical": self.fused_logical_messages,
            "words_fused": self.fused_words,
            "words_logical": self.fused_logical_words,
            "logical_rounds_fused": self.fused_logical_rounds,
        }

    # -- derived quantities -------------------------------------------------------

    def total_words(self) -> int:
        """Total words moved across the network (sum over messages)."""
        return sum(self.words_sent)

    def max_words_sent(self) -> int:
        """Bandwidth cost: the largest per-processor send volume."""
        return max(self.words_sent)

    def max_words_received(self) -> int:
        """Largest per-processor receive volume."""
        return max(self.words_received)

    def max_words_moved(self) -> int:
        """Largest per-processor sent+received volume.

        The paper's lower bound counts words a processor must *send or
        receive*; for the symmetric exchanges here sent == received per
        processor, so this equals twice :meth:`max_words_sent` for the
        optimal algorithm.
        """
        return max(
            s + r for s, r in zip(self.words_sent, self.words_received)
        )

    def round_count(self) -> int:
        """Number of completed synchronous rounds."""
        return len(self.rounds)

    def all_rounds_are_permutations(self) -> bool:
        """True iff every round obeys the single-port model (§3.1)."""
        return all(r.is_permutation_round() for r in self.rounds)

    def per_processor_summary(self) -> List[Dict[str, int]]:
        """One dict per processor with its four counters."""
        return [
            {
                "rank": p,
                "words_sent": self.words_sent[p],
                "words_received": self.words_received[p],
                "messages_sent": self.messages_sent[p],
                "messages_received": self.messages_received[p],
            }
            for p in range(self.P)
        ]

    def merge(self, other: "CommunicationLedger") -> None:
        """Fold another ledger's records into this one (e.g. per-iteration
        ledgers of an iterative app)."""
        if other.P != self.P:
            raise MachineError("merging ledgers of different machine sizes")
        for p in range(self.P):
            self.words_sent[p] += other.words_sent[p]
            self.words_received[p] += other.words_received[p]
            self.messages_sent[p] += other.messages_sent[p]
            self.messages_received[p] += other.messages_received[p]
        self.rounds.extend(other.rounds)
        self.retry_rounds += other.retry_rounds
        self.retry_words += other.retry_words
        self.retry_messages += other.retry_messages
        self.fused_rounds += other.fused_rounds
        self.fused_messages += other.fused_messages
        self.fused_words += other.fused_words
        self.fused_logical_rounds += other.fused_logical_rounds
        self.fused_logical_messages += other.fused_logical_messages
        self.fused_logical_words += other.fused_logical_words

    def __repr__(self) -> str:
        return (
            f"CommunicationLedger(P={self.P}, rounds={len(self.rounds)},"
            f" total_words={self.total_words()})"
        )
