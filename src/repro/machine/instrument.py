"""Wall-clock instrumentation: per-phase timers and span hooks.

Every :class:`~repro.machine.machine.Machine` owns an
:class:`Instrumentation`; algorithm drivers wrap their phases in
``machine.instrument.span("sttsv:exchange-x")`` so benchmarks
(``benchmarks/run_backends_bench.py``) and traces
(:func:`repro.reporting.trace.phase_table`) can attribute time to
gather / compute / reduce without touching the ledger — the model
costs stay schedule-derived, the spans measure reality.

Hooks registered with :meth:`Instrumentation.add_hook` fire on every
span close with ``(name, seconds)``, which is how external profilers or
streaming dashboards subscribe without polling.

The same registry carries out-of-band *warnings*: degradation events
that are not errors — most importantly a transport failover, when the
machine abandons a dead shared-memory worker pool for the in-process
transport. :meth:`Instrumentation.warn` records the message and fires
every hook added with :meth:`Instrumentation.add_warning_hook`, so
operators see the degradation without the run aborting.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

SpanHook = Callable[[str, float], None]
WarningHook = Callable[[str], None]


@dataclass
class PhaseTiming:
    """Aggregated wall-clock time of one named phase."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average duration per span (0 when never entered)."""
        return self.total_seconds / self.count if self.count else 0.0


class Instrumentation:
    """Per-phase timer registry with span hooks.

    Examples
    --------
    >>> instrument = Instrumentation()
    >>> with instrument.span("demo"):
    ...     pass
    >>> instrument.timings()["demo"].count
    1
    """

    def __init__(self):
        self._timings: Dict[str, PhaseTiming] = {}
        self._hooks: List[SpanHook] = []
        self._warning_hooks: List[WarningHook] = []
        #: Degradation messages recorded by :meth:`warn`, in order.
        self.warnings: List[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; nesting is allowed (each level records itself)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            record = self._timings.get(name)
            if record is None:
                record = self._timings[name] = PhaseTiming(name)
            record.count += 1
            record.total_seconds += elapsed
            for hook in self._hooks:
                hook(name, elapsed)

    def add_hook(self, hook: SpanHook) -> None:
        """Subscribe ``hook(name, seconds)`` to every span close."""
        self._hooks.append(hook)

    def add_warning_hook(self, hook: WarningHook) -> None:
        """Subscribe ``hook(message)`` to every :meth:`warn` call."""
        self._warning_hooks.append(hook)

    def warn(self, message: str) -> None:
        """Record a degradation event and notify warning hooks.

        Used by the machine's transport failover: the run continues on
        the fallback transport, but the event is never silent.
        """
        self.warnings.append(message)
        for hook in self._warning_hooks:
            hook(message)

    def timings(self) -> Dict[str, PhaseTiming]:
        """Aggregated timings keyed by span name (insertion-ordered)."""
        return dict(self._timings)

    def total_seconds(self, name: str) -> float:
        """Total time spent in ``name`` (0.0 if never entered)."""
        record = self._timings.get(name)
        return record.total_seconds if record else 0.0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly summary used by the benchmark reports."""
        return {
            name: {
                "count": record.count,
                "total_seconds": record.total_seconds,
                "mean_seconds": record.mean_seconds,
            }
            for name, record in self._timings.items()
        }

    def reset(self) -> None:
        """Drop all recorded timings and warnings (hooks stay registered)."""
        self._timings.clear()
        self.warnings.clear()

    def __repr__(self) -> str:
        return f"Instrumentation(phases={sorted(self._timings)})"
