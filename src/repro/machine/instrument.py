"""Deprecated shim: instrumentation moved to :mod:`repro.obs`.

The per-phase :class:`Instrumentation` timers grew trace-span emission
and now live in :mod:`repro.obs.instrument`, next to the tracer and
metrics registry they feed. Every import path that worked before the
move keeps working through this module, but importing it emits a
:class:`DeprecationWarning` — switch to :mod:`repro.obs.instrument`
(or the :mod:`repro.obs` package exports) directly.
"""

from __future__ import annotations

import warnings

from repro.obs.instrument import (
    Instrumentation,
    PhaseTiming,
    SpanHook,
    WarningHook,
)

warnings.warn(
    "repro.machine.instrument is deprecated; import from"
    " repro.obs.instrument instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Instrumentation", "PhaseTiming", "SpanHook", "WarningHook"]
