"""Compatibility shim: instrumentation moved to :mod:`repro.obs`.

The per-phase :class:`Instrumentation` timers grew trace-span emission
and now live in :mod:`repro.obs.instrument`, next to the tracer and
metrics registry they feed. Every import path that worked before the
move keeps working through this module; new code should import from
:mod:`repro.obs` directly.
"""

from __future__ import annotations

from repro.obs.instrument import (
    Instrumentation,
    PhaseTiming,
    SpanHook,
    WarningHook,
)

__all__ = ["Instrumentation", "PhaseTiming", "SpanHook", "WarningHook"]
