"""Wall-clock instrumentation: per-phase timers and span hooks.

Every :class:`~repro.machine.machine.Machine` owns an
:class:`Instrumentation`; algorithm drivers wrap their phases in
``machine.instrument.span("sttsv:exchange-x")`` so benchmarks
(``benchmarks/run_backends_bench.py``) and traces
(:func:`repro.reporting.trace.phase_table`) can attribute time to
gather / compute / reduce without touching the ledger — the model
costs stay schedule-derived, the spans measure reality.

Hooks registered with :meth:`Instrumentation.add_hook` fire on every
span close with ``(name, seconds)``, which is how external profilers or
streaming dashboards subscribe without polling.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List

SpanHook = Callable[[str, float], None]


@dataclass
class PhaseTiming:
    """Aggregated wall-clock time of one named phase."""

    name: str
    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        """Average duration per span (0 when never entered)."""
        return self.total_seconds / self.count if self.count else 0.0


class Instrumentation:
    """Per-phase timer registry with span hooks.

    Examples
    --------
    >>> instrument = Instrumentation()
    >>> with instrument.span("demo"):
    ...     pass
    >>> instrument.timings()["demo"].count
    1
    """

    def __init__(self):
        self._timings: Dict[str, PhaseTiming] = {}
        self._hooks: List[SpanHook] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; nesting is allowed (each level records itself)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            record = self._timings.get(name)
            if record is None:
                record = self._timings[name] = PhaseTiming(name)
            record.count += 1
            record.total_seconds += elapsed
            for hook in self._hooks:
                hook(name, elapsed)

    def add_hook(self, hook: SpanHook) -> None:
        """Subscribe ``hook(name, seconds)`` to every span close."""
        self._hooks.append(hook)

    def timings(self) -> Dict[str, PhaseTiming]:
        """Aggregated timings keyed by span name (insertion-ordered)."""
        return dict(self._timings)

    def total_seconds(self, name: str) -> float:
        """Total time spent in ``name`` (0.0 if never entered)."""
        record = self._timings.get(name)
        return record.total_seconds if record else 0.0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly summary used by the benchmark reports."""
        return {
            name: {
                "count": record.count,
                "total_seconds": record.total_seconds,
                "mean_seconds": record.mean_seconds,
            }
            for name, record in self._timings.items()
        }

    def reset(self) -> None:
        """Drop all recorded timings (hooks stay registered)."""
        self._timings.clear()

    def __repr__(self) -> str:
        return f"Instrumentation(phases={sorted(self._timings)})"
