"""Bounded retry-with-backoff policy for round-level recovery.

The ``execute_round`` funnel (:mod:`repro.machine.collectives`)
verifies every delivered payload against a checksum computed from the
schedule *before* the bytes moved. On a mismatch it re-executes only
the failed transfers, sleeping :meth:`RecoveryPolicy.backoff_seconds`
between attempts, and gives up with
:class:`~repro.errors.MachineError` once :attr:`RecoveryPolicy.
max_retries` is exhausted — a faulty network can cost extra rounds
(visible in the ledger's ``retry_*`` side-channel) but can never change
an answer or the algorithmic counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard the machine tries to redeliver a failed transfer.

    Attributes
    ----------
    enabled:
        When ``False`` *and* the transport stack carries no fault
        layer, the collectives skip per-transfer checksum computation
        entirely (the fast path for trusted transports). With a fault
        layer present verification always runs regardless — a faulty
        network must never slip past integrity checks. Distinct from
        ``max_retries=0``, which keeps verification on but makes any
        failure immediately fatal.
    max_retries:
        Retry rounds allowed per communication round before the machine
        raises :class:`~repro.errors.MachineError`. Zero disables
        recovery (any integrity failure is immediately fatal).
    backoff_base_seconds, backoff_factor:
        Exponential backoff: attempt ``k`` (1-based) sleeps
        ``base * factor ** (k - 1)`` seconds before re-executing. The
        default base of 0.5 ms keeps deterministic tests fast while
        still exercising the backoff path.
    """

    max_retries: int = 8
    backoff_base_seconds: float = 5e-4
    backoff_factor: float = 2.0
    enabled: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise ConfigurationError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.backoff_base_seconds * self.backoff_factor ** (attempt - 1)
