"""Cost models for runs recorded in a :class:`CommunicationLedger`.

The α-β-γ model assigns ``α`` per message latency, ``β`` per word
bandwidth, and ``γ`` per flop. The paper analyses the bandwidth term;
this module evaluates full model estimates so benchmarks can also
report latency-dominated regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.ledger import CommunicationLedger


@dataclass(frozen=True)
class CostModel:
    """α-β-γ machine parameters (seconds per message / word / flop).

    Defaults are representative of a commodity cluster: 1 µs latency,
    1 ns per 8-byte word (≈ 8 GB/s links), 0.1 ns per flop.
    """

    alpha: float = 1e-6
    beta: float = 1e-9
    gamma: float = 1e-10

    def bandwidth_time(self, ledger: CommunicationLedger) -> float:
        """``β · Σ_rounds max-per-processor-words`` — the synchronous
        critical-path bandwidth time."""
        return self.beta * sum(r.max_words() for r in ledger.rounds)

    def latency_time(self, ledger: CommunicationLedger) -> float:
        """``α · #rounds`` — one latency per synchronous step."""
        return self.alpha * ledger.round_count()

    def communication_time(self, ledger: CommunicationLedger) -> float:
        """Latency plus bandwidth along the synchronous critical path."""
        return self.latency_time(ledger) + self.bandwidth_time(ledger)

    def computation_time(self, flops: int) -> float:
        """``γ · flops`` for a per-processor flop count."""
        return self.gamma * flops

    def total_time(self, ledger: CommunicationLedger, flops: int) -> float:
        """Estimated wall time: communication + per-processor computation."""
        return self.communication_time(ledger) + self.computation_time(flops)
