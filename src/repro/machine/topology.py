"""Backwards-compatible alias for the α-β-γ cost model.

The cost model moved to :mod:`repro.machine.cost` when the machine
layer was split into Transport / CostModel / Instrumentation; the class
gained schedule pricing (:meth:`~repro.machine.cost.CostModel.
price_round`) while keeping the α-β-γ time estimates unchanged. Import
from :mod:`repro.machine.cost` (or :mod:`repro.machine`) in new code.
"""

from __future__ import annotations

from repro.machine.cost import CostModel

__all__ = ["CostModel"]
