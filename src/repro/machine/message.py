"""Message records exchanged on the simulated network."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


def word_count(payload: Any) -> int:
    """Number of words (float64 elements) a payload occupies on the wire.

    NumPy arrays count their element totals; scalars count 1; ``None``
    counts 0 (an empty slot in an All-to-All exchange).
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if np.isscalar(payload):
        return 1
    raise TypeError(f"cannot size payload of type {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer on the simulated network.

    Attributes
    ----------
    source, dest:
        Processor ranks; ``source != dest`` always (local data movement
        is free in the α-β-γ model and never enters the ledger).
    words:
        Number of words transferred.
    tag:
        Free-form label used by tests and traces (e.g. ``"x-exchange"``).
    """

    source: int
    dest: int
    words: int
    tag: str = ""

    def __post_init__(self):
        if self.source == self.dest:
            raise ValueError("message source equals destination")
        if self.words < 0:
            raise ValueError("negative word count")
