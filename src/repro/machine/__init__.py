"""Simulated distributed-memory machine in the α-β-γ (MPI) model.

The paper's model (§3.1): ``P`` processors, each with private local
memory, connected by a fully connected network with bidirectional
links; a processor can send and receive at most one message at a time.
Communication cost = latency (α · #messages) + bandwidth (β · #words);
the paper analyses bandwidth (word counts), which this simulator
reproduces *exactly* — every word that crosses between two simulated
processors is recorded in a :class:`~repro.machine.ledger.CommunicationLedger`.

Design notes
------------
The machine layer is split into three pluggable services:

* **Transport** (:mod:`repro.machine.transport`) — moves the bytes.
  :class:`SimulatedTransport` is the sequential, deterministic default
  (bit-for-bit the seed simulator's behavior);
  :class:`SharedMemoryTransport` executes every exchange round across
  ``multiprocessing`` workers over OS shared-memory buffers.
* **CostModel** (:mod:`repro.machine.cost`) — prices each round's
  transfer *schedule* into the ledger before any bytes move, so word /
  message / round counts are identical under every transport. It also
  carries the α-β-γ parameters and time estimates.
* **Instrumentation** (:mod:`repro.obs.instrument`) — per-phase
  wall-clock spans consumed by traces and benchmarks.

SPMD algorithms are expressed as loops over per-processor state with
all cross-processor data movement funneled through the collectives in
:mod:`repro.machine.collectives`. Nothing stops Python code from
peeking at another processor's memory — instead, correctness is
enforced by the test suite, which verifies that algorithms produce
correct results *and* that their ledgers match the paper's closed-form
communication costs (an algorithm that cheated by peeking would show a
word count below the proven lower bound, which a test asserts cannot
happen).
"""

from repro.machine.message import Message
from repro.machine.ledger import CommunicationLedger, RoundRecord
from repro.machine.processor import Processor
from repro.machine.machine import Machine
from repro.machine.cost import CostModel
from repro.obs.instrument import Instrumentation, PhaseTiming
from repro.machine.recovery import RecoveryPolicy
from repro.machine.transport import (
    FaultInjectingTransport,
    FaultPolicy,
    FaultStats,
    FusedGroup,
    FusionPlan,
    FusionStats,
    fusible_payload,
    SharedMemoryTransport,
    SimulatedTransport,
    Transfer,
    Transport,
    TRANSPORTS,
    make_transport,
    payload_checksum,
)
from repro.machine.auditing import AuditReport, audit_ledger
from repro.machine.collectives import (
    all_to_all,
    all_to_all_words,
    execute_round,
    execute_rounds_fused,
    reduce_scatter,
    all_reduce_vector,
    point_to_point_rounds,
    schedule_point_to_point,
    all_gather,
    all_reduce_scalar,
    broadcast,
)

__all__ = [
    "AuditReport",
    "audit_ledger",
    "reduce_scatter",
    "all_reduce_vector",
    "Message",
    "CommunicationLedger",
    "RoundRecord",
    "Processor",
    "Machine",
    "CostModel",
    "Instrumentation",
    "PhaseTiming",
    "FaultInjectingTransport",
    "FaultPolicy",
    "FaultStats",
    "FusedGroup",
    "FusionPlan",
    "FusionStats",
    "fusible_payload",
    "RecoveryPolicy",
    "payload_checksum",
    "SharedMemoryTransport",
    "SimulatedTransport",
    "Transfer",
    "Transport",
    "TRANSPORTS",
    "make_transport",
    "all_to_all",
    "all_to_all_words",
    "execute_round",
    "execute_rounds_fused",
    "point_to_point_rounds",
    "schedule_point_to_point",
    "all_gather",
    "all_reduce_scalar",
    "broadcast",
]
