"""The CostModel layer: schedule pricing + α-β-γ time estimates.

Communication cost in this codebase is a pure function of the *round
schedule* — the list of :class:`~repro.machine.transport.base.Transfer`
records a collective is about to execute — never of the transport that
moves the bytes. :meth:`CostModel.price_round` records a round into the
:class:`~repro.machine.ledger.CommunicationLedger` *before* the
transport runs, which is what guarantees word / message / round counts
are identical under the simulated and shared-memory backends (asserted
by the cross-backend equivalence tests).

The same class carries the α-β-γ machine parameters (§3.1) and the
derived time estimates the benchmarks report; it subsumes the old
``repro.machine.topology.CostModel``, which now re-exports this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.machine.ledger import CommunicationLedger
from repro.machine.message import Message, word_count
from repro.machine.transport.base import Transfer
from repro.machine.transport.fusion import FusionPlan


@dataclass(frozen=True)
class CostModel:
    """α-β-γ machine parameters plus the schedule-pricing rules.

    Defaults are representative of a commodity cluster: 1 µs latency,
    1 ns per 8-byte word (≈ 8 GB/s links), 0.1 ns per flop.
    """

    alpha: float = 1e-6
    beta: float = 1e-9
    gamma: float = 1e-10

    # -- schedule pricing ------------------------------------------------------

    def price_round(
        self,
        ledger: CommunicationLedger,
        label: str,
        transfers: Sequence[Transfer],
        tag: str,
        record_empty: bool = False,
    ) -> None:
        """Record one synchronous round's schedule into ``ledger``.

        Each transfer becomes one :class:`Message` of
        ``word_count(payload)`` words. Zero-word transfers are skipped
        unless ``record_empty`` — mirroring the collectives' historical
        accounting (broadcast records empties, ring collectives do not).
        """
        ledger.begin_round(label)
        for transfer in transfers:
            words = word_count(transfer.payload)
            if words == 0 and not record_empty:
                continue
            ledger.record(Message(transfer.source, transfer.dest, words, tag))
        ledger.end_round()

    def price_fused_batch(
        self,
        ledger: CommunicationLedger,
        rounds: Sequence[Tuple[str, Sequence[Transfer]]],
        tag: str,
        plan: FusionPlan,
        record_empty: bool = False,
    ) -> None:
        """Price a batch of logical rounds plus its fused execution.

        The *algorithmic* schedule is priced exactly as if the rounds
        ran unfused — each ``(label, transfers)`` pair goes through
        :meth:`price_round` in order, so labels, message counts, and
        round order in the ledger are byte-for-byte identical to the
        unfused run. What the transport physically moves (``plan``'s
        per-destination group buffers, headers included) is recorded in
        the ledger's ``fused_*`` side-channel only.
        """
        for label, transfers in rounds:
            self.price_round(ledger, label, transfers, tag, record_empty)
        stats = plan.stats()
        ledger.record_fusion(
            physical_messages=stats.messages_fused,
            physical_words=stats.words_fused,
            logical_rounds=len(rounds),
            logical_messages=stats.messages_logical,
            logical_words=stats.words_logical,
        )

    # -- α-β-γ time estimates --------------------------------------------------

    def bandwidth_time(self, ledger: CommunicationLedger) -> float:
        """``β · Σ_rounds max-per-processor-words`` — the synchronous
        critical-path bandwidth time."""
        return self.beta * sum(r.max_words() for r in ledger.rounds)

    def latency_time(self, ledger: CommunicationLedger) -> float:
        """``α · #rounds`` — one latency per synchronous step."""
        return self.alpha * ledger.round_count()

    def communication_time(self, ledger: CommunicationLedger) -> float:
        """Latency plus bandwidth along the synchronous critical path."""
        return self.latency_time(ledger) + self.bandwidth_time(ledger)

    def computation_time(self, flops: int) -> float:
        """``γ · flops`` for a per-processor flop count."""
        return self.gamma * flops

    def total_time(self, ledger: CommunicationLedger, flops: int) -> float:
        """Estimated wall time: communication + per-processor computation."""
        return self.communication_time(ledger) + self.computation_time(flops)

    def fused_communication_time(self, ledger: CommunicationLedger) -> float:
        """α-β estimate of what the *physical* (fused) schedule costs.

        Each fused batch is one synchronous step of one buffer per
        active destination, so the latency term is ``α · fused_rounds``
        and the bandwidth term spreads the physical words (headers
        included) over the machine: ``β · fused_words / P``. Rounds
        that did not go through the fusing scheduler — identified
        exactly by the per-round ``fused`` tag
        :meth:`~repro.machine.ledger.CommunicationLedger.record_fusion`
        sets — are priced at their own unfused
        :meth:`communication_time` rates, so mixed ledgers are exact,
        not averaged. Comparing this against
        :meth:`communication_time` quantifies the α savings fusion
        buys without touching the algorithmic ledger. An empty ledger
        prices to 0.0.
        """
        unfused = [r for r in ledger.rounds if not r.fused]
        return (
            self.alpha * (ledger.fused_rounds + len(unfused))
            + self.beta * ledger.fused_words / max(ledger.P, 1)
            + self.beta * sum(r.max_words() for r in unfused)
        )
