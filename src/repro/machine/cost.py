"""The CostModel layer: schedule pricing + α-β-γ time estimates.

Communication cost in this codebase is a pure function of the *round
schedule* — the list of :class:`~repro.machine.transport.base.Transfer`
records a collective is about to execute — never of the transport that
moves the bytes. :meth:`CostModel.price_round` records a round into the
:class:`~repro.machine.ledger.CommunicationLedger` *before* the
transport runs, which is what guarantees word / message / round counts
are identical under the simulated and shared-memory backends (asserted
by the cross-backend equivalence tests).

The same class carries the α-β-γ machine parameters (§3.1) and the
derived time estimates the benchmarks report; it subsumes the old
``repro.machine.topology.CostModel``, which now re-exports this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.machine.ledger import CommunicationLedger
from repro.machine.message import Message, word_count
from repro.machine.transport.base import Transfer


@dataclass(frozen=True)
class CostModel:
    """α-β-γ machine parameters plus the schedule-pricing rules.

    Defaults are representative of a commodity cluster: 1 µs latency,
    1 ns per 8-byte word (≈ 8 GB/s links), 0.1 ns per flop.
    """

    alpha: float = 1e-6
    beta: float = 1e-9
    gamma: float = 1e-10

    # -- schedule pricing ------------------------------------------------------

    def price_round(
        self,
        ledger: CommunicationLedger,
        label: str,
        transfers: Sequence[Transfer],
        tag: str,
        record_empty: bool = False,
    ) -> None:
        """Record one synchronous round's schedule into ``ledger``.

        Each transfer becomes one :class:`Message` of
        ``word_count(payload)`` words. Zero-word transfers are skipped
        unless ``record_empty`` — mirroring the collectives' historical
        accounting (broadcast records empties, ring collectives do not).
        """
        ledger.begin_round(label)
        for transfer in transfers:
            words = word_count(transfer.payload)
            if words == 0 and not record_empty:
                continue
            ledger.record(Message(transfer.source, transfer.dest, words, tag))
        ledger.end_round()

    # -- α-β-γ time estimates --------------------------------------------------

    def bandwidth_time(self, ledger: CommunicationLedger) -> float:
        """``β · Σ_rounds max-per-processor-words`` — the synchronous
        critical-path bandwidth time."""
        return self.beta * sum(r.max_words() for r in ledger.rounds)

    def latency_time(self, ledger: CommunicationLedger) -> float:
        """``α · #rounds`` — one latency per synchronous step."""
        return self.alpha * ledger.round_count()

    def communication_time(self, ledger: CommunicationLedger) -> float:
        """Latency plus bandwidth along the synchronous critical path."""
        return self.latency_time(ledger) + self.bandwidth_time(ledger)

    def computation_time(self, flops: int) -> float:
        """``γ · flops`` for a per-processor flop count."""
        return self.gamma * flops

    def total_time(self, ledger: CommunicationLedger, flops: int) -> float:
        """Estimated wall time: communication + per-processor computation."""
        return self.communication_time(ledger) + self.computation_time(flops)
