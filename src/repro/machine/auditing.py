"""Ledger auditing: machine-model invariants as a checkable report.

The simulator's value is that claims can't drift from runs. The auditor
condenses a :class:`CommunicationLedger` into pass/fail invariants used
by tests and by the CLI:

* **single-port** — every round a (partial) permutation (§3.1);
* **conservation** — per tag, total sent == total received (no words
  invented or lost in transit);
* **symmetry** — when expected (the optimal schedule exchanges are
  mutual), every processor's sent equals its received volume;
* **uniformity** — all processors moved the same volume (the paper's
  per-processor formulas hold with equality for *every* processor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.machine.ledger import CommunicationLedger


@dataclass
class AuditReport:
    """Result of :func:`audit_ledger`."""

    single_port: bool
    conservation: bool
    symmetric_volumes: bool
    uniform_volumes: bool
    per_tag_words: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All invariants hold."""
        return not self.violations

    def __str__(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [f"ledger audit: {status}"]
        lines += [f"  - {v}" for v in self.violations]
        lines.append(f"  tags: {self.per_tag_words}")
        return "\n".join(lines)


def audit_ledger(
    ledger: CommunicationLedger,
    *,
    expect_symmetric: bool = True,
    expect_uniform: bool = True,
) -> AuditReport:
    """Check the model invariants on a completed ledger.

    Parameters
    ----------
    expect_symmetric:
        Require per-processor sent == received (true for the mutual
        exchanges of Algorithm 5; false for e.g. broadcasts).
    expect_uniform:
        Require identical volumes on all processors (true for the
        optimal algorithms; false for tree collectives).
    """
    violations: List[str] = []

    single_port = ledger.all_rounds_are_permutations()
    if not single_port:
        offenders = [
            index
            for index, record in enumerate(ledger.rounds)
            if not record.is_permutation_round()
        ]
        violations.append(
            f"single-port violated in rounds {offenders[:5]}"
            + ("..." if len(offenders) > 5 else "")
        )

    per_tag_sent: Dict[str, int] = {}
    for record in ledger.rounds:
        for message in record.messages:
            per_tag_sent[message.tag] = per_tag_sent.get(message.tag, 0) + message.words
    conservation = sum(per_tag_sent.values()) == sum(ledger.words_received)
    if not conservation:
        violations.append(
            f"conservation violated: {sum(per_tag_sent.values())} sent vs"
            f" {sum(ledger.words_received)} received"
        )

    symmetric = all(
        s == r for s, r in zip(ledger.words_sent, ledger.words_received)
    )
    if expect_symmetric and not symmetric:
        asym = [
            p
            for p, (s, r) in enumerate(
                zip(ledger.words_sent, ledger.words_received)
            )
            if s != r
        ]
        violations.append(f"asymmetric volumes at processors {asym[:5]}")

    uniform = len(set(ledger.words_sent)) <= 1
    if expect_uniform and not uniform:
        violations.append(
            f"non-uniform volumes: min {min(ledger.words_sent)},"
            f" max {max(ledger.words_sent)}"
        )

    return AuditReport(
        single_port=single_port,
        conservation=conservation,
        symmetric_volumes=symmetric,
        uniform_volumes=uniform,
        per_tag_words=per_tag_sent,
        violations=violations,
    )
