"""Collective communication operations with exact word accounting.

Each collective is implemented as a sequence of synchronous rounds in
which every processor sends at most one message and receives at most
one message (the single-port model of paper §3.1); the ledger verifies
this invariant in tests. Word counts follow the standard
bandwidth-optimal algorithms referenced by the paper (Thakur et al.):

* **All-to-All** — ``P - 1`` rounds; in round ``r`` processor ``p``
  sends its buffer for processor ``(p + r) mod P``. Per-processor cost
  is the sum of its outgoing buffer sizes (paper §7.2.2 "All-to-All
  collectives" analysis).
* **Allgather** — ring algorithm, ``P - 1`` rounds; per-processor cost
  ``(P - 1) / P`` of the gathered total.
* **Scalar allreduce / broadcast** — binomial trees,
  ``O(log P)`` rounds of one word each.
* **Scheduled point-to-point** — caller-provided permutation rounds
  (the paper's Theorem 7.2 schedule).

Every round follows the same four-step discipline:

1. build the round's transfer *schedule* (a list of
   :class:`~repro.machine.transport.base.Transfer` records);
2. price the schedule into the ledger through ``machine.cost`` — so
   word / message / round counts depend only on the schedule;
3. hand the same schedule to ``machine.transport`` to move the bytes
   (in-process copies, shared-memory workers, or any future backend);
4. verify every delivered payload against a checksum computed from the
   schedule *before* the bytes moved, re-executing only the failed
   transfers under the machine's :class:`~repro.machine.recovery.
   RecoveryPolicy` (retry cost lands in the ledger's ``retry_*``
   side-channel, never in the algorithmic counts).

If the transport itself dies mid-round — e.g. the shared-memory worker
pool loses a process — and the machine allows failover, the round is
re-executed on a fresh in-process transport (DESIGN.md §8).

When ``machine.fusion`` is on (the default), batchable schedules —
the point-to-point permutation rounds and the All-to-All shifts — are
executed through :func:`execute_rounds_fused`: the whole batch's
transfers are packed into one buffer per destination
(:mod:`repro.machine.transport.fusion`) so the transport moves
O(active destinations) physical messages, while the ledger is still
priced round-by-round from the unfused schedule (fusion savings land
in the ``fused_*`` side-channel, DESIGN.md §11). Ring and tree
collectives have cross-round data dependencies and always run
unfused.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MachineError
from repro.machine.machine import Machine
from repro.machine.message import word_count
from repro.machine.transport import Transfer, payload_checksum
from repro.machine.transport.fusion import FusionPlan
from repro.obs.tracing import get_tracer


SendBuffers = Sequence[Dict[int, np.ndarray]]

#: One logical round: its ledger label plus its transfer schedule.
LabeledRound = Tuple[str, List[Transfer]]

#: Reusable no-op context for untraced rounds (yields ``None``).
_NULL_SPAN = nullcontext(None)


def _exchange_with_failover(
    machine: Machine, transfers: Sequence[Transfer]
) -> List[np.ndarray]:
    """One transport exchange, failing over to the in-process transport
    when an unrecoverable transport error allows it."""
    try:
        return machine.transport.exchange(transfers)
    except MachineError as error:
        replacement = machine.fail_over(str(error))
        if replacement is None:
            raise
        return replacement.exchange(transfers)


def _recover_failed(
    machine: Machine,
    label: str,
    tag: str,
    transfers: Sequence[Transfer],
    expected: List[Optional[int]],
    delivered: List[Optional[np.ndarray]],
    failed: List[int],
    tracer,
) -> int:
    """Redeliver ``failed`` transfer indices until all verify or the
    retry budget is exhausted.

    Shared by the unfused and fused execution paths: retries always go
    through the transport *individually unfused* (a failed fused group
    degrades to plain per-transfer redelivery). ``expected`` entries of
    ``None`` are computed lazily from the schedule payload — the
    checksum fast path skips them up front, but a redelivery must still
    be verified against the schedule. Returns the number of retry
    attempts; mutates ``delivered`` and ``expected`` in place.
    """
    attempt = 0
    recovery = machine.recovery
    while failed:
        attempt += 1
        if attempt > recovery.max_retries:
            raise MachineError(
                f"round {label!r}: {len(failed)} transfer(s) failed"
                f" integrity verification after {recovery.max_retries}"
                " retries — unrecoverable transport faults"
            )
        backoff = recovery.backoff_seconds(attempt)
        if backoff > 0:
            time.sleep(backoff)
        subset = [transfers[index] for index in failed]
        retry_words = sum(word_count(t.payload) for t in subset)
        machine.ledger.record_retry(words=retry_words, messages=len(subset))
        if tracer.enabled:
            tracer.event(
                f"retry:{label}",
                kind="retry",
                attrs={
                    "tag": tag,
                    "attempt": attempt,
                    "messages": len(subset),
                    "words": retry_words,
                },
            )
        redelivered = _exchange_with_failover(machine, subset)
        still_failed: List[int] = []
        for index, array in zip(failed, redelivered):
            if expected[index] is None:
                expected[index] = payload_checksum(transfers[index].payload)
            if payload_checksum(array) == expected[index]:
                delivered[index] = array
            else:
                still_failed.append(index)
        failed = still_failed
    return attempt


def execute_round(
    machine: Machine,
    label: str,
    tag: str,
    transfers: Sequence[Transfer],
    record_empty: bool = False,
) -> List[np.ndarray]:
    """Price one round's schedule into the ledger, move the bytes, and
    verify the deliveries.

    Returns the delivered arrays in transfer order. This is the single
    funnel every collective's rounds go through — the separation that
    keeps ledger counts transport-independent, and the place where
    end-of-round integrity verification happens: each payload's
    checksum is computed from the schedule before the transport runs,
    and any delivery that fails the check is re-executed (failed
    transfers only) under ``machine.recovery``. A round that still
    fails after the retry budget raises
    :class:`~repro.errors.MachineError` — a faulty transport can cost
    retry rounds but can never corrupt a result.

    Fast path: when ``machine.verification_required`` is false (no
    fault layer in the transport stack and recovery explicitly
    disabled) the per-transfer checksum computation is skipped —
    delivered arrays are returned as-is.
    """
    transfers = list(transfers)
    tracer = get_tracer()
    if tracer.enabled:
        # Trace spans *read* the schedule the ledger is priced from;
        # they never touch the ledger itself, so the algorithmic counts
        # the paper's closed forms are asserted against cannot move.
        span_cm = tracer.span(
            f"round:{label}",
            kind="round",
            attrs={
                "tag": tag,
                "messages": len(transfers),
                "words": sum(word_count(t.payload) for t in transfers),
            },
        )
    else:
        span_cm = None
    with span_cm if span_cm is not None else _NULL_SPAN as round_span:
        machine.cost.price_round(
            machine.ledger, label, transfers, tag, record_empty=record_empty
        )
        verify = machine.verification_required
        expected: List[Optional[int]] = [
            payload_checksum(t.payload)
            if verify and isinstance(t.payload, np.ndarray)
            else None
            for t in transfers
        ]
        delivered = _exchange_with_failover(machine, transfers)
        failed = [
            index
            for index, (array, digest) in enumerate(zip(delivered, expected))
            if digest is not None and payload_checksum(array) != digest
        ]
        attempt = _recover_failed(
            machine, label, tag, transfers, expected, delivered, failed, tracer
        )
        if round_span is not None and attempt:
            round_span.attrs["retries"] = attempt
    return delivered


def execute_rounds_fused(
    machine: Machine,
    rounds: Sequence[LabeledRound],
    tag: str,
    record_empty: bool = False,
) -> List[List[np.ndarray]]:
    """Execute a batch of logical rounds as one fused physical exchange.

    The batch's transfers are grouped by destination into one
    header-framed buffer each (:class:`FusionPlan`), so the transport
    moves O(active destinations) messages instead of O(transfers). The
    algorithmic ledger is priced from the *unfused* schedule — every
    round individually, in order, under its own label — and the
    physical counts land in the ledger's ``fused_*`` side-channel, so
    fused and unfused runs have byte-for-byte identical algorithmic
    fingerprints.

    Deliveries are returned per round, in transfer order, as views
    into the fused buffers (bitwise identical to unfused delivery). A
    group that fails structural validation or any member that fails
    its checksum degrades to individual unfused redelivery through the
    shared recovery path. Batches containing non-1-D/non-float64
    payloads, and machines with fusion disabled, fall back to plain
    per-round :func:`execute_round` execution (same pricing, no fusion
    side-channel).

    Note: all payloads are collected before any byte moves, so
    ``payload_for``-style callers must hand over buffers that stay
    valid (not reused) for the whole batch.
    """
    rounds = [(label, list(transfers)) for label, transfers in rounds]
    flat = [t for _, transfers in rounds for t in transfers]
    plan = FusionPlan(flat)
    if not machine.fusion or not plan.fusible or not flat:
        return [
            execute_round(machine, label, tag, transfers, record_empty)
            for label, transfers in rounds
        ]
    stats = plan.stats()
    tracer = get_tracer()
    if tracer.enabled:
        span_cm = tracer.span(
            f"round:{tag}:fused{len(rounds)}",
            kind="round",
            attrs={
                "tag": tag,
                "rounds": len(rounds),
                "messages_fused": stats.messages_fused,
                "messages_logical": stats.messages_logical,
                "words_fused": stats.words_fused,
                "words_logical": stats.words_logical,
            },
        )
    else:
        span_cm = None
    with span_cm if span_cm is not None else _NULL_SPAN as round_span:
        machine.cost.price_fused_batch(
            machine.ledger, rounds, tag, plan, record_empty=record_empty
        )
        verify = machine.verification_required
        expected: List[Optional[int]] = [
            payload_checksum(t.payload) if verify else None for t in flat
        ]
        physical = plan.pack()
        delivered_fused = _exchange_with_failover(machine, physical)
        payloads, failed = plan.unpack(delivered_fused)
        if verify:
            failed_set = set(failed)
            for index, payload in enumerate(payloads):
                if index in failed_set or payload is None:
                    continue
                if payload_checksum(payload) != expected[index]:
                    failed.append(index)
        failed = sorted(set(failed))
        label = f"{tag}:fused{len(rounds)}"
        attempt = _recover_failed(
            machine, label, tag, flat, expected, payloads, failed, tracer
        )
        if round_span is not None and attempt:
            round_span.attrs["retries"] = attempt
    per_round: List[List[np.ndarray]] = []
    cursor = 0
    for _, transfers in rounds:
        per_round.append(payloads[cursor : cursor + len(transfers)])
        cursor += len(transfers)
    return per_round


def _validate_sendbufs(machine: Machine, sendbufs: SendBuffers) -> None:
    if len(sendbufs) != machine.P:
        raise MachineError(
            f"need one send-buffer dict per processor ({machine.P}),"
            f" got {len(sendbufs)}"
        )
    for src, buffers in enumerate(sendbufs):
        for dst in buffers:
            if not 0 <= dst < machine.P:
                raise MachineError(f"processor {src} addressing unknown rank {dst}")


def all_to_all(
    machine: Machine, sendbufs: SendBuffers, tag: str = "all-to-all"
) -> List[Dict[int, np.ndarray]]:
    """Personalized All-to-All exchange.

    Parameters
    ----------
    sendbufs:
        ``sendbufs[src][dst]`` is the array ``src`` sends to ``dst``.
        Missing keys mean "nothing to send"; a self-entry
        (``dst == src``) is delivered locally at zero cost.

    Returns
    -------
    list of dict
        ``recv[dst][src]`` — arrays received (copies, so later mutation
        on the sender side cannot leak across processors).
    """
    _validate_sendbufs(machine, sendbufs)
    P = machine.P
    recv: List[Dict[int, np.ndarray]] = [{} for _ in range(P)]
    # Local deliveries are free.
    for src in range(P):
        if src in sendbufs[src]:
            recv[src][src] = np.array(sendbufs[src][src], copy=True)
    labeled: List[LabeledRound] = []
    for shift in range(1, P):
        transfers: List[Transfer] = []
        for src in range(P):
            dst = (src + shift) % P
            payload = sendbufs[src].get(dst)
            if payload is None or word_count(payload) == 0:
                continue
            transfers.append(Transfer(src, dst, payload))
        labeled.append((f"{tag}:shift{shift}", transfers))
    if machine.fusion:
        delivered_rounds = execute_rounds_fused(machine, labeled, tag)
    else:
        delivered_rounds = [
            execute_round(machine, label, tag, transfers)
            for label, transfers in labeled
        ]
    for (_, transfers), delivered in zip(labeled, delivered_rounds):
        for transfer, array in zip(transfers, delivered):
            recv[transfer.dest][transfer.source] = array
    return recv


def all_to_all_words(sendbufs: SendBuffers) -> List[int]:
    """Per-processor outgoing word counts of an All-to-All, excluding
    self-deliveries (useful for asserting costs without running one)."""
    totals = []
    for src, buffers in enumerate(sendbufs):
        totals.append(
            sum(word_count(v) for d, v in buffers.items() if d != src)
        )
    return totals


def point_to_point_rounds(
    machine: Machine,
    rounds: Sequence[Dict[int, int]],
    payload_for: Callable[[int, int], Optional[np.ndarray]],
    tag: str = "p2p",
) -> List[Dict[int, np.ndarray]]:
    """Execute a precomputed permutation-round schedule.

    Parameters
    ----------
    rounds:
        Each round maps sender -> receiver and must be (a partial
        function of) a permutation: no sender twice, no receiver twice.
    payload_for:
        Callback giving the array ``src`` sends to ``dst``; returning
        ``None`` or an empty array suppresses the message.

    Returns
    -------
    list of dict
        ``recv[dst][src]`` — arrays received over the whole schedule.
    """
    P = machine.P
    recv: List[Dict[int, np.ndarray]] = [{} for _ in range(P)]
    labeled = schedule_point_to_point(rounds, payload_for, tag=tag)
    if machine.fusion:
        delivered_rounds = execute_rounds_fused(machine, labeled, tag)
    else:
        delivered_rounds = [
            execute_round(machine, label, tag, transfers)
            for label, transfers in labeled
        ]
    for (_, transfers), delivered in zip(labeled, delivered_rounds):
        for transfer, array in zip(transfers, delivered):
            recv[transfer.dest][transfer.source] = array
    return recv


def schedule_point_to_point(
    rounds: Sequence[Dict[int, int]],
    payload_for: Callable[[int, int], Optional[np.ndarray]],
    tag: str = "p2p",
) -> List[LabeledRound]:
    """Validate and materialize a permutation-round schedule.

    Shared front half of :func:`point_to_point_rounds`, exposed so
    pipelined callers (the STTSV overlap pipeline) can build the full
    labeled schedule once, then execute it in chunks through
    :func:`execute_rounds_fused` while overlapping compute. Labels are
    exactly the ones unfused execution would use (``{tag}:round{i}``),
    so the ledger fingerprint is identical either way.
    """
    labeled: List[LabeledRound] = []
    for index, round_map in enumerate(rounds):
        senders = list(round_map.keys())
        receivers = list(round_map.values())
        if len(set(senders)) != len(senders) or len(set(receivers)) != len(receivers):
            raise MachineError(f"round {index} is not a permutation")
        transfers: List[Transfer] = []
        for src, dst in round_map.items():
            if src == dst:
                raise MachineError(f"round {index}: self-send at {src}")
            payload = payload_for(src, dst)
            if word_count(payload) == 0:
                continue
            transfers.append(Transfer(src, dst, payload))
        labeled.append((f"{tag}:round{index}", transfers))
    return labeled


def all_gather(
    machine: Machine, contributions: Sequence[np.ndarray], tag: str = "allgather"
) -> List[List[np.ndarray]]:
    """Ring allgather: everyone ends with every contribution.

    Returns ``gathered[p][src]`` (copies). Per-processor send volume is
    ``Σ_{src != p-ring-position} |contribution[src]|`` — the
    bandwidth-optimal ``(P-1)/P`` fraction when contributions are
    uniform.
    """
    P = machine.P
    if len(contributions) != P:
        raise MachineError("need one contribution per processor")
    gathered: List[List[Optional[np.ndarray]]] = [
        [None] * P for _ in range(P)
    ]
    for p in range(P):
        gathered[p][p] = np.array(contributions[p], copy=True)
    for step in range(P - 1):
        transfers: List[Transfer] = []
        origins: List[int] = []
        for p in range(P):
            dst = (p + 1) % P
            origin = (p - step) % P
            payload = gathered[p][origin]
            if payload is None:
                raise MachineError("ring allgather lost a piece (internal)")
            transfers.append(Transfer(p, dst, payload))
            origins.append(origin)
        # Price the full round from the schedule, then apply deliveries
        # (synchronous step); empty pieces travel but cost nothing.
        delivered = execute_round(machine, f"{tag}:step{step}", tag, transfers)
        for transfer, origin, array in zip(transfers, origins, delivered):
            gathered[transfer.dest][origin] = array
    return [list(row) for row in gathered]


def _binomial_tree_rounds(P: int) -> List[int]:
    """Distances used by binomial broadcast/reduce: 1, 2, 4, ... < P."""
    distances = []
    d = 1
    while d < P:
        distances.append(d)
        d *= 2
    return distances


def broadcast(
    machine: Machine, root: int, value: np.ndarray, tag: str = "bcast"
) -> List[np.ndarray]:
    """Binomial-tree broadcast of ``value`` from ``root`` to everyone.

    Returns the per-processor copies. ``ceil(log2 P)`` rounds; in each
    round every processor that already holds the value forwards it one
    "distance" further (ranks taken relative to the root).
    """
    P = machine.P
    payload = np.atleast_1d(np.asarray(value, dtype=np.float64))
    holders = {root}
    results: List[Optional[np.ndarray]] = [None] * P
    results[root] = payload.copy()
    for distance in reversed(_binomial_tree_rounds(P)):
        transfers: List[Transfer] = []
        for src in holders:
            relative = (src - root) % P
            if relative % (2 * distance) == 0:
                dst_rel = relative + distance
                if dst_rel < P:
                    transfers.append(
                        Transfer(src, (root + dst_rel) % P, payload)
                    )
        delivered = execute_round(
            machine, f"{tag}:d{distance}", tag, transfers, record_empty=True
        )
        for transfer, array in zip(transfers, delivered):
            results[transfer.dest] = array
            holders.add(transfer.dest)
    if any(r is None for r in results):
        raise MachineError("broadcast failed to reach every processor")
    return [r for r in results]


def reduce_scatter(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    tag: str = "reduce-scatter",
) -> List[np.ndarray]:
    """Ring reduce-scatter: elementwise-sum ``P`` equal-length arrays and
    leave slice ``p`` (of ``P`` equal slices) on processor ``p``.

    Bandwidth-optimal ring: ``P - 1`` rounds, each processor sends one
    slice-sized partial per round — ``(P-1)/P`` of the array total.
    Array length must be divisible by ``P``.
    """
    P = machine.P
    if len(contributions) != P:
        raise MachineError("need one contribution per processor")
    arrays = [np.asarray(c, dtype=np.float64) for c in contributions]
    length = arrays[0].size
    if any(a.shape != (length,) for a in arrays):
        raise MachineError("contributions must be equal-length vectors")
    if length % P != 0:
        raise MachineError(f"length {length} not divisible by P={P}")
    slice_size = length // P
    # running[p] holds the partial sums currently resident on p, keyed
    # by slice index.
    running: List[Dict[int, np.ndarray]] = [
        {s: arrays[p][s * slice_size : (s + 1) * slice_size].copy() for s in range(P)}
        for p in range(P)
    ]
    for step in range(P - 1):
        transfers: List[Transfer] = []
        slice_indices: List[int] = []
        for p in range(P):
            dst = (p + 1) % P
            slice_index = (p - step) % P
            transfers.append(Transfer(p, dst, running[p].pop(slice_index)))
            slice_indices.append(slice_index)
        delivered = execute_round(machine, f"{tag}:step{step}", tag, transfers)
        for transfer, slice_index, array in zip(
            transfers, slice_indices, delivered
        ):
            dst = transfer.dest
            running[dst][slice_index] = running[dst][slice_index] + array
    results = []
    for p in range(P):
        # After P-1 steps processor p holds exactly slice (p+1) mod P.
        ((slice_index, value),) = running[p].items()
        results.append((slice_index, value))
    # Re-key so result[p] is slice p (deliver locally, zero cost).
    by_slice = {slice_index: value for slice_index, value in results}
    return [by_slice[s] for s in range(P)]


def all_reduce_vector(
    machine: Machine,
    contributions: Sequence[np.ndarray],
    tag: str = "allreduce-vec",
) -> List[np.ndarray]:
    """Bandwidth-optimal vector allreduce: reduce-scatter + allgather.

    Per-processor cost ``2 (P-1)/P · length`` words — the classic
    Rabenseifner composition. Length must be divisible by ``P``.
    """
    P = machine.P
    slices = reduce_scatter(machine, contributions, tag=f"{tag}:rs")
    gathered = all_gather(machine, slices, tag=f"{tag}:ag")
    return [np.concatenate(gathered[p]) for p in range(P)]


def _check_reduction_op(op: Callable[[float, float], float]) -> None:
    """Spot-check that ``op`` is associative and commutative.

    The binomial tree applies ``op`` in a fixed, implementation-chosen
    order (``op(partial[dest], incoming)`` at each merge), so any
    order-sensitive operator would make the result depend on the tree
    shape. The probe uses small integers whose float arithmetic is
    exact, so well-behaved operators (``+``, ``*``, ``min``, ``max``)
    always pass; it cannot prove the properties for every input — the
    contract is documented on :func:`all_reduce_scalar`.
    """
    a, b, c = 2.0, 3.0, 5.0
    try:
        commutes = op(a, b) == op(b, a)
        associates = op(op(a, b), c) == op(a, op(b, c))
    except Exception as error:
        raise MachineError(
            f"allreduce op failed on float probes: {error}"
        ) from error
    if not (commutes and associates):
        raise MachineError(
            "allreduce op must be associative and commutative (the"
            " binomial tree fixes the application order); probe"
            f" op(2,3)={op(a, b)!r} op(3,2)={op(b, a)!r}"
            f" op(op(2,3),5)={op(op(a, b), c)!r}"
            f" op(2,op(3,5))={op(a, op(b, c))!r}"
        )


def all_reduce_scalar(
    machine: Machine,
    values: Sequence[float],
    op: Callable[[float, float], float] = lambda a, b: a + b,
    tag: str = "allreduce",
) -> List[float]:
    """Allreduce of one scalar per processor (binomial reduce + broadcast).

    Used by the parallel HOPM for norm computation; costs
    ``2 ceil(log2 P)`` rounds of one word each.

    ``op`` **must be associative and commutative** (``+``, ``*``,
    ``min``, ``max``): the binomial tree merges partials in a fixed
    order determined only by ``P`` — rank pairs ``(p, p - distance)``
    for distances 1, 2, 4, … — so for a conforming ``op`` the result is
    deterministic and identical across transports (bitwise, even for
    float summation, since every backend executes the same tree in the
    same order). A cheap probe rejects obviously order-sensitive
    operators like subtraction; true floating-point non-associativity
    of ``+`` is harmless here precisely because the reduction order is
    fixed.
    """
    P = machine.P
    if len(values) != P:
        raise MachineError("need one value per processor")
    _check_reduction_op(op)
    partial = list(values)
    # Reduce to rank 0 along a binomial tree.
    for distance in _binomial_tree_rounds(P):
        transfers: List[Transfer] = []
        for p in range(P):
            if p % (2 * distance) == distance:
                transfers.append(
                    Transfer(p, p - distance, np.array([partial[p]]))
                )
        delivered = execute_round(
            machine, f"{tag}:reduce-d{distance}", tag, transfers
        )
        for transfer, array in zip(transfers, delivered):
            partial[transfer.dest] = op(partial[transfer.dest], float(array[0]))
    total = partial[0]
    results = broadcast(machine, 0, np.array([total]), tag=f"{tag}:bcast")
    return [float(r[0]) for r in results]
