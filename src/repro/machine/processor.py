"""Per-processor private state for the simulated machine."""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.errors import MachineError


class Processor:
    """A simulated processor: a rank plus a private key-value memory.

    Algorithms store named arrays (tensor blocks, vector shards,
    receive buffers) in :attr:`memory`. The class tracks a high-water
    mark of resident words so memory-usage claims (paper §6.1.3) can be
    checked, though the paper's analysis is memory-*independent*.
    """

    def __init__(self, rank: int):
        if rank < 0:
            raise MachineError(f"rank must be >= 0, got {rank}")
        self.rank = rank
        self.memory: Dict[str, Any] = {}
        self._peak_words = 0

    def store(self, key: str, value: Any) -> None:
        """Bind ``key`` to ``value`` in private memory."""
        self.memory[key] = value
        self._update_peak()

    def load(self, key: str) -> Any:
        """Read a private value; raises if absent."""
        try:
            return self.memory[key]
        except KeyError:
            raise MachineError(
                f"processor {self.rank} has no value named {key!r}"
            ) from None

    def discard(self, key: str) -> None:
        """Drop a value if present."""
        self.memory.pop(key, None)

    def resident_words(self) -> int:
        """Current float64 words resident in private memory (arrays only)."""
        total = 0
        for value in self.memory.values():
            if isinstance(value, np.ndarray):
                total += value.size
            elif isinstance(value, dict):
                total += sum(
                    v.size for v in value.values() if isinstance(v, np.ndarray)
                )
        return total

    def peak_words(self) -> int:
        """High-water mark of :meth:`resident_words` across stores."""
        return self._peak_words

    def _update_peak(self) -> None:
        self._peak_words = max(self._peak_words, self.resident_words())

    def __repr__(self) -> str:
        return f"Processor(rank={self.rank}, keys={sorted(self.memory)})"
