"""The simulated machine: processors + network ledger."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import MachineError
from repro.machine.ledger import CommunicationLedger
from repro.machine.processor import Processor
from repro.util.validation import check_positive_int


class Machine:
    """``P`` fully connected processors in the α-β-γ model (paper §3.1).

    The machine owns the :class:`CommunicationLedger`; all collectives
    in :mod:`repro.machine.collectives` take the machine as their first
    argument and account every transferred word through it.

    Examples
    --------
    >>> machine = Machine(4)
    >>> machine.P
    4
    >>> [p.rank for p in machine]
    [0, 1, 2, 3]
    """

    def __init__(self, n_processors: int):
        self.P = check_positive_int(n_processors, "n_processors")
        self.processors: List[Processor] = [Processor(r) for r in range(self.P)]
        self.ledger = CommunicationLedger(self.P)

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __len__(self) -> int:
        return self.P

    def __getitem__(self, rank: int) -> Processor:
        if not 0 <= rank < self.P:
            raise MachineError(f"rank {rank} out of range for P={self.P}")
        return self.processors[rank]

    def reset_ledger(self) -> CommunicationLedger:
        """Swap in a fresh ledger, returning the old one.

        Iterative applications (HOPM) use this to measure per-iteration
        communication while accumulating a total.
        """
        old = self.ledger
        self.ledger = CommunicationLedger(self.P)
        return old

    def __repr__(self) -> str:
        return f"Machine(P={self.P})"
