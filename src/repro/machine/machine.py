"""The simulated machine: processors + transport + cost model + ledger."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import MachineError
from repro.machine.cost import CostModel
from repro.machine.ledger import CommunicationLedger
from repro.obs.instrument import Instrumentation
from repro.machine.processor import Processor
from repro.machine.recovery import RecoveryPolicy
from repro.machine.transport import SimulatedTransport, Transport
from repro.util.validation import check_positive_int


class Machine:
    """``P`` fully connected processors in the α-β-γ model (paper §3.1).

    The machine composes the three machine-layer services:

    * :attr:`transport` moves bytes (default
      :class:`~repro.machine.transport.simulated.SimulatedTransport`;
      pass a :class:`~repro.machine.transport.shm.SharedMemoryTransport`
      to execute exchanges across OS processes);
    * :attr:`cost` prices round schedules into :attr:`ledger` — counts
      depend only on the schedule, never on the transport;
    * :attr:`instrument` exposes per-phase wall-clock spans and
      degradation warnings;
    * :attr:`recovery` bounds the retry-with-backoff loop the
      collectives run when a delivered payload fails its integrity
      checksum (DESIGN.md §8).

    When :attr:`failover` is enabled (the default) and a non-simulated
    transport dies mid-run — e.g. the shared-memory worker pool loses a
    process — :meth:`fail_over` swaps in a fresh
    :class:`SimulatedTransport`, records a warning through
    :attr:`instrument`, and the round is re-executed there. Delivered
    values are bitwise identical across transports, so the run
    completes correctly, just slower.

    Examples
    --------
    >>> machine = Machine(4)
    >>> machine.P
    4
    >>> [p.rank for p in machine]
    [0, 1, 2, 3]
    >>> machine.transport.name
    'simulated'
    """

    def __init__(
        self,
        n_processors: int,
        transport: Optional[Transport] = None,
        cost_model: Optional[CostModel] = None,
        recovery: Optional[RecoveryPolicy] = None,
        failover: bool = True,
        fusion: bool = True,
    ):
        self.P = check_positive_int(n_processors, "n_processors")
        if transport is None:
            transport = SimulatedTransport(self.P)
        if transport.P != self.P:
            raise MachineError(
                f"transport connects {transport.P} processors, machine"
                f" has {self.P}"
            )
        self.transport = transport
        self.cost = cost_model if cost_model is not None else CostModel()
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.failover = failover
        #: When True (default) the collectives may pack batches of
        #: logical rounds into per-destination fused buffers; the
        #: algorithmic ledger is priced from the unfused schedule
        #: either way (DESIGN.md §11).
        self.fusion = fusion
        #: True once :meth:`fail_over` has replaced a dead transport.
        self.failed_over = False
        self.processors: List[Processor] = [Processor(r) for r in range(self.P)]
        self.ledger = CommunicationLedger(self.P)
        self.instrument = Instrumentation()

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __len__(self) -> int:
        return self.P

    def __getitem__(self, rank: int) -> Processor:
        if not 0 <= rank < self.P:
            raise MachineError(f"rank {rank} out of range for P={self.P}")
        return self.processors[rank]

    @property
    def verification_required(self) -> bool:
        """Whether delivered payloads must be checksum-verified.

        True when recovery is enabled or any layer of the transport
        stack injects faults. Recomputed per call because failover can
        swap the transport mid-run. The fault-layer walk reads
        ``__dict__`` directly: :class:`FaultInjectingTransport` forwards
        unknown attributes to its inner transport, so ``getattr`` would
        see phantom ``inner`` / ``policy`` attributes on plain
        transports.
        """
        if self.recovery.enabled:
            return True
        transport: Optional[Transport] = self.transport
        while transport is not None:
            policy = transport.__dict__.get("policy")
            if policy is not None and getattr(policy, "enabled", False):
                return True
            transport = transport.__dict__.get("inner")
        return False

    def reset_ledger(self) -> CommunicationLedger:
        """Swap in a fresh ledger, returning the old one.

        Iterative applications (HOPM) use this to measure per-iteration
        communication while accumulating a total.
        """
        old = self.ledger
        self.ledger = CommunicationLedger(self.P)
        return old

    def fail_over(self, reason: str) -> Optional[Transport]:
        """Replace a dead transport with a fresh :class:`SimulatedTransport`.

        Returns the replacement, or ``None`` when failover is disabled
        or the active transport already is the in-process fallback (in
        which case the caller should re-raise the original error). The
        event is recorded as an :meth:`Instrumentation.warn` warning —
        degradation is graceful but never silent.
        """
        if not self.failover or isinstance(self.transport, SimulatedTransport):
            return None
        try:
            self.transport.close()
        except Exception:
            pass  # the transport is already broken; keep degrading
        self.failed_over = True
        self.instrument.warn(
            f"transport {self.transport.name!r} failed"
            f" ({reason}); failing over to 'simulated'"
        )
        self.transport = SimulatedTransport(self.P)
        return self.transport

    def close(self) -> None:
        """Release transport resources (worker processes, segments)."""
        self.transport.close()

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Machine(P={self.P}, transport={self.transport.name!r})"
