"""The simulated machine: processors + transport + cost model + ledger."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import MachineError
from repro.machine.cost import CostModel
from repro.machine.instrument import Instrumentation
from repro.machine.ledger import CommunicationLedger
from repro.machine.processor import Processor
from repro.machine.transport import SimulatedTransport, Transport
from repro.util.validation import check_positive_int


class Machine:
    """``P`` fully connected processors in the α-β-γ model (paper §3.1).

    The machine composes the three machine-layer services:

    * :attr:`transport` moves bytes (default
      :class:`~repro.machine.transport.simulated.SimulatedTransport`;
      pass a :class:`~repro.machine.transport.shm.SharedMemoryTransport`
      to execute exchanges across OS processes);
    * :attr:`cost` prices round schedules into :attr:`ledger` — counts
      depend only on the schedule, never on the transport;
    * :attr:`instrument` exposes per-phase wall-clock spans.

    Examples
    --------
    >>> machine = Machine(4)
    >>> machine.P
    4
    >>> [p.rank for p in machine]
    [0, 1, 2, 3]
    >>> machine.transport.name
    'simulated'
    """

    def __init__(
        self,
        n_processors: int,
        transport: Optional[Transport] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.P = check_positive_int(n_processors, "n_processors")
        if transport is None:
            transport = SimulatedTransport(self.P)
        if transport.P != self.P:
            raise MachineError(
                f"transport connects {transport.P} processors, machine"
                f" has {self.P}"
            )
        self.transport = transport
        self.cost = cost_model if cost_model is not None else CostModel()
        self.processors: List[Processor] = [Processor(r) for r in range(self.P)]
        self.ledger = CommunicationLedger(self.P)
        self.instrument = Instrumentation()

    def __iter__(self) -> Iterator[Processor]:
        return iter(self.processors)

    def __len__(self) -> int:
        return self.P

    def __getitem__(self, rank: int) -> Processor:
        if not 0 <= rank < self.P:
            raise MachineError(f"rank {rank} out of range for P={self.P}")
        return self.processors[rank]

    def reset_ledger(self) -> CommunicationLedger:
        """Swap in a fresh ledger, returning the old one.

        Iterative applications (HOPM) use this to measure per-iteration
        communication while accumulating a total.
        """
        old = self.ledger
        self.ledger = CommunicationLedger(self.P)
        return old

    def close(self) -> None:
        """Release transport resources (worker processes, segments)."""
        self.transport.close()

    def __enter__(self) -> "Machine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Machine(P={self.P}, transport={self.transport.name!r})"
