"""Pluggable data-movement backends for the simulated machine.

``Transport`` is the seam every scaling backend plugs into: the
collectives in :mod:`repro.machine.collectives` compute a round's
transfer *schedule*, price it into the ledger through the
:class:`~repro.machine.cost.CostModel`, and hand the same schedule to
``machine.transport`` to move the bytes. Adding a backend (MPI, async
sockets, multi-node) means implementing ``exchange`` + ``close`` and
registering a constructor here — no algorithm or ledger code changes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.machine.transport.base import (
    Transfer,
    Transport,
    check_transfers,
    payload_checksum,
)
from repro.machine.transport.faults import (
    FaultInjectingTransport,
    FaultPolicy,
    FaultStats,
)
from repro.machine.transport.fusion import (
    FusedGroup,
    FusionPlan,
    FusionStats,
    fusible_payload,
)
from repro.machine.transport.shm import SharedMemoryTransport
from repro.machine.transport.simulated import SimulatedTransport

#: Registry of constructible backends, keyed by CLI name.
TRANSPORTS: Dict[str, Callable[..., Transport]] = {
    "simulated": SimulatedTransport,
    "shm": SharedMemoryTransport,
}


def make_transport(
    name: str,
    n_processors: int,
    faults: Optional[FaultPolicy] = None,
    **kwargs,
) -> Transport:
    """Construct a registered transport by name.

    Parameters
    ----------
    name:
        One of :data:`TRANSPORTS` (``"simulated"``, ``"shm"``).
    n_processors:
        Machine size the transport connects.
    faults:
        Optional :class:`FaultPolicy`; when given (and enabled) the
        backend is wrapped in a :class:`FaultInjectingTransport` so
        the round-recovery path is exercised end to end.
    kwargs:
        Backend-specific options (e.g. ``n_workers`` for ``"shm"``).
    """
    try:
        factory = TRANSPORTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown transport {name!r}; available:"
            f" {', '.join(sorted(TRANSPORTS))}"
        ) from None
    transport = factory(n_processors, **kwargs)
    if faults is not None and faults.enabled:
        transport = FaultInjectingTransport(transport, faults)
    return transport


__all__ = [
    "Transfer",
    "Transport",
    "TRANSPORTS",
    "FaultInjectingTransport",
    "FaultPolicy",
    "FaultStats",
    "FusedGroup",
    "FusionPlan",
    "FusionStats",
    "fusible_payload",
    "SharedMemoryTransport",
    "SimulatedTransport",
    "check_transfers",
    "make_transport",
    "payload_checksum",
]
