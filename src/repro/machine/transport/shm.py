"""Shared-memory transport: rounds executed by ``multiprocessing`` workers.

Every synchronous round makes a real cross-process trip:

1. the coordinator packs all payloads into a shared *outbox* segment
   (:class:`multiprocessing.shared_memory.SharedMemory`);
2. a persistent pool of worker processes — the "network" — copies each
   payload's bytes from the outbox into a shared *inbox* segment (the
   copy instructions are split across workers, so disjoint payloads
   move concurrently);
3. the coordinator unpacks the inbox into fresh receiver-side arrays.

Because the wire format is raw little-endian bytes of the original
arrays, delivered values are bitwise identical to the payloads — the
property the cross-backend equivalence tests assert. The ledger never
sees this module: costs are priced from the transfer schedule by
:class:`repro.machine.cost.CostModel` before the bytes move, so word /
message / round counts are the same as under the simulated transport.

The worker pool and both segments are created lazily on the first
``exchange`` and grow geometrically when a round needs more room.
Always ``close()`` the transport (or use it as a context manager) so
the segments are unlinked and the workers join.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import uuid
from multiprocessing import shared_memory
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MachineError
from repro.machine.transport.base import Transfer, check_transfers
from repro.util.validation import check_positive_int

#: (outbox offset, inbox offset, byte count) copy instruction.
CopyOp = Tuple[int, int, int]

_WORKER_TIMEOUT_SECONDS = 60.0
#: How often the coordinator re-checks worker liveness while waiting
#: for round acknowledgements — a dead worker is diagnosed in well
#: under a second instead of stalling until the full timeout.
_HEALTH_POLL_SECONDS = 0.05


def _attach(cache: Dict[str, shared_memory.SharedMemory], name: str):
    segment = cache.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        cache[name] = segment
    return segment


def _evict_stale(
    cache: Dict[str, shared_memory.SharedMemory], current: Tuple[str, str]
) -> None:
    """Close and forget cached segments that are no longer in use.

    ``_ensure_capacity`` regrows by unlinking both segments and
    creating fresh ones under new uuid names, so any cached name other
    than the current (outbox, inbox) pair refers to an unlinked
    segment. Without eviction every worker would hold those mappings
    and file descriptors open for the life of the pool — a memory + fd
    leak proportional to the number of regrowths.
    """
    for name in list(cache):
        if name not in current:
            cache.pop(name).close()


def _worker_main(task_queue, done_queue) -> None:
    """Worker loop: copy byte ranges from the outbox into the inbox.

    Runs in a child process. Tasks are ``(out_name, in_name, ops)``;
    ``None`` shuts the worker down. Each completed task is acknowledged
    on ``done_queue`` with ``("ok", n_ops)`` or ``("error", message)``.
    The segment cache holds exactly the current outbox/inbox pair:
    anything older is evicted before the copies run, so capacity
    regrowth on the coordinator side cannot leak segments here.
    """
    segments: Dict[str, shared_memory.SharedMemory] = {}
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            out_name, in_name, ops = task
            try:
                _evict_stale(segments, (out_name, in_name))
                outbox = _attach(segments, out_name)
                inbox = _attach(segments, in_name)
                for out_offset, in_offset, nbytes in ops:
                    inbox.buf[in_offset : in_offset + nbytes] = outbox.buf[
                        out_offset : out_offset + nbytes
                    ]
                done_queue.put(("ok", len(ops)))
            except Exception as error:  # surfaced by the coordinator
                done_queue.put(("error", f"{type(error).__name__}: {error}"))
    finally:
        for segment in segments.values():
            segment.close()


class SharedMemoryTransport:
    """Cross-process delivery over OS shared memory.

    Parameters
    ----------
    n_processors:
        Simulated machine size (ranks the transfers may reference).
    n_workers:
        Worker processes performing the copies; defaults to
        ``min(4, os.cpu_count())``. More workers only help when rounds
        carry many independent payloads.
    respawn_workers:
        When ``True`` (default), a worker found dead *between* rounds
        is quietly replaced before the next dispatch (counted in
        :attr:`workers_respawned`). When ``False`` — or when a worker
        dies *mid-round*, where its batch is already lost — the
        transport closes and raises :class:`~repro.errors.MachineError`
        naming the dead worker immediately, instead of stalling until
        the acknowledgement timeout.
    """

    name = "shm"

    def __init__(
        self,
        n_processors: int,
        n_workers: Optional[int] = None,
        respawn_workers: bool = True,
    ):
        self.P = check_positive_int(n_processors, "n_processors")
        if n_workers is None:
            n_workers = min(4, os.cpu_count() or 1)
        self.n_workers = check_positive_int(n_workers, "n_workers")
        self.respawn_workers = respawn_workers
        self._context = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else None
        )
        self._workers: List[mp.process.BaseProcess] = []
        self._task_queue = None
        self._done_queue = None
        self._outbox: Optional[shared_memory.SharedMemory] = None
        self._inbox: Optional[shared_memory.SharedMemory] = None
        self._capacity = 0
        self._closed = False
        #: Rounds executed and bytes moved (for benchmark reports).
        self.rounds_executed = 0
        self.bytes_moved = 0
        #: Dead workers replaced across the pool's lifetime.
        self.workers_respawned = 0

    # -- lifecycle -----------------------------------------------------------

    def _spawn_worker(self) -> mp.process.BaseProcess:
        process = self._context.Process(
            target=_worker_main,
            args=(self._task_queue, self._done_queue),
            daemon=True,
        )
        process.start()
        return process

    def _ensure_workers(self) -> None:
        if self._workers:
            return
        # Start the resource tracker before forking so every worker
        # shares the coordinator's tracker: worker-side attaches then
        # register in the same cache the coordinator's unlink clears
        # (a worker-private tracker would warn about "leaked" segments
        # at shutdown).
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._task_queue = self._context.Queue()
        self._done_queue = self._context.Queue()
        for _ in range(self.n_workers):
            self._workers.append(self._spawn_worker())

    def _dead_workers(self) -> List[int]:
        return [
            index
            for index, process in enumerate(self._workers)
            if not process.is_alive()
        ]

    def _rebuild_pool(self) -> None:
        """Replace the whole pool, queues included.

        A worker killed while blocked in ``task_queue.get()`` dies
        holding the queue's shared reader lock, which deadlocks every
        other consumer of that queue — survivors and respawns alike. The
        only safe recovery is fresh queues and a fresh pool; this runs
        pre-dispatch, so no in-flight task is lost.
        """
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
        if self._task_queue is not None:
            self._task_queue.close()
            self._done_queue.close()
        self._workers = []
        self._task_queue = None
        self._done_queue = None
        self._ensure_workers()

    def _check_worker_health(self) -> None:
        """Pre-dispatch liveness gate: respawn or fail fast, never hang.

        Runs before any batch is queued, so rebuilding the pool cannot
        lose an in-flight task.
        """
        dead = self._dead_workers()
        if not dead:
            return
        if self.respawn_workers:
            self.workers_respawned += len(dead)
            self._rebuild_pool()
            return
        detail = ", ".join(
            f"worker {index} (pid {self._workers[index].pid},"
            f" exitcode {self._workers[index].exitcode})"
            for index in dead
        )
        self.close()
        raise MachineError(
            f"shared-memory {detail} died before dispatch; pool is"
            " unusable (construct with respawn_workers=True to replace"
            " dead workers automatically)"
        )

    def _ensure_capacity(self, nbytes: int) -> None:
        if nbytes <= self._capacity:
            return
        new_capacity = max(nbytes, 2 * self._capacity, 1 << 16)
        self._release_segments()
        token = uuid.uuid4().hex[:12]
        self._outbox = shared_memory.SharedMemory(
            create=True, size=new_capacity, name=f"repro-out-{token}"
        )
        self._inbox = shared_memory.SharedMemory(
            create=True, size=new_capacity, name=f"repro-in-{token}"
        )
        self._capacity = new_capacity

    def _release_segments(self) -> None:
        for segment in (self._outbox, self._inbox):
            if segment is not None:
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
        self._outbox = None
        self._inbox = None
        self._capacity = 0

    def close(self) -> None:
        """Shut down workers and unlink both shared segments."""
        if self._closed:
            return
        self._closed = True
        if self._workers:
            for _ in self._workers:
                self._task_queue.put(None)
            for process in self._workers:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
            self._task_queue.close()
            self._done_queue.close()
            self._workers = []
        self._release_segments()

    def __enter__(self) -> "SharedMemoryTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- the round -----------------------------------------------------------

    def _await_acknowledgement(self) -> Tuple[str, object]:
        """Wait for one batch acknowledgement, polling worker liveness.

        A worker that dies mid-round can never acknowledge its batch;
        polling every :data:`_HEALTH_POLL_SECONDS` turns what used to
        be a silent 60-second stall into an immediate
        :class:`~repro.errors.MachineError` naming the dead worker.
        """
        deadline = time.monotonic() + _WORKER_TIMEOUT_SECONDS
        while True:
            try:
                return self._done_queue.get(timeout=_HEALTH_POLL_SECONDS)
            except Empty:
                dead = self._dead_workers()
                if dead:
                    detail = ", ".join(
                        f"worker {index}"
                        f" (pid {self._workers[index].pid},"
                        f" exitcode {self._workers[index].exitcode})"
                        for index in dead
                    )
                    self.close()
                    raise MachineError(
                        f"shared-memory {detail} died mid-round; its"
                        " batch is lost"
                    ) from None
                if time.monotonic() > deadline:
                    self.close()
                    raise MachineError(
                        "shared-memory worker did not acknowledge a"
                        f" round within {_WORKER_TIMEOUT_SECONDS:.0f}s"
                    ) from None

    def reset_stats(self) -> None:
        """Zero the benchmark counters (rounds, bytes, respawns).

        Lets callers that run several configurations through one pool
        attribute ``rounds_executed`` / ``bytes_moved`` to exactly one
        configuration instead of an accumulated total.
        """
        self.rounds_executed = 0
        self.bytes_moved = 0
        self.workers_respawned = 0

    def exchange(self, transfers: Sequence[Transfer]) -> List[np.ndarray]:
        """Move one round of payloads through shared memory."""
        if self._closed:
            raise MachineError("exchange() on a closed SharedMemoryTransport")
        transfers = list(transfers)
        check_transfers(self.P, transfers)
        arrays = [np.ascontiguousarray(t.payload) for t in transfers]
        offsets: List[int] = []
        total = 0
        for array in arrays:
            offsets.append(total)
            total += array.nbytes
        if total == 0:
            # Nothing on the wire; deliver empty/0-d copies directly.
            return [array.copy() for array in arrays]

        # Workers fork *before* the first segments exist: a fresh pool
        # inherits no segment mappings from the coordinator, so the only
        # segments a worker ever maps come from _attach — and those are
        # evicted on regrowth (see _evict_stale).
        self._ensure_workers()
        self._check_worker_health()
        self._ensure_capacity(total)
        out_view = np.frombuffer(self._outbox.buf, dtype=np.uint8)
        for array, offset in zip(arrays, offsets):
            if array.nbytes:
                out_view[offset : offset + array.nbytes] = array.reshape(
                    -1
                ).view(np.uint8)
        # Release the exported buffer pointer before anything below can
        # close() the transport (dead-worker paths) — an outstanding
        # numpy view over the segment would turn close() into a
        # BufferError and mask the real diagnosis.
        del out_view

        ops: List[CopyOp] = [
            (offset, offset, array.nbytes)
            for array, offset in zip(arrays, offsets)
            if array.nbytes
        ]
        chunk = -(-len(ops) // len(self._workers))
        batches = [ops[i : i + chunk] for i in range(0, len(ops), chunk)]
        for batch in batches:
            self._task_queue.put(
                (self._outbox.name, self._inbox.name, batch)
            )
        for _ in batches:
            status, detail = self._await_acknowledgement()
            if status != "ok":
                self.close()
                raise MachineError(f"shared-memory worker failed: {detail}")

        delivered: List[np.ndarray] = []
        for array, offset in zip(arrays, offsets):
            received = np.empty(array.shape, dtype=array.dtype)
            if array.nbytes:
                received.reshape(-1).view(np.uint8)[:] = np.frombuffer(
                    self._inbox.buf, dtype=np.uint8
                )[offset : offset + array.nbytes]
            delivered.append(received)
        self.rounds_executed += 1
        self.bytes_moved += total
        return delivered

    def __repr__(self) -> str:
        return (
            f"SharedMemoryTransport(P={self.P}, workers={self.n_workers},"
            f" rounds={self.rounds_executed})"
        )
