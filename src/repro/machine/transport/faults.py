"""Deterministic fault injection for any :class:`Transport`.

The ledger's whole claim is that its counts are *exact* — which is only
credible if the machine layer can prove it never trades correctness for
delivery problems. :class:`FaultInjectingTransport` wraps a real
transport and perturbs delivered payloads under a seeded
:class:`FaultPolicy`:

* **drop** — the delivery is lost; the receiver observes a zero-filled
  buffer of the right shape (a packet that never arrived).
* **corrupt** — delivered bytes are bit-flipped in place.
* **duplicate** — the payload arrives twice, back to back (a stale
  retransmission stomping the receive buffer).
* **delay** — delivery is correct but late by ``delay_seconds``.

Faults are drawn from ``numpy.random.default_rng(seed)`` one decision
per transfer in schedule order, so a fixed (policy, algorithm, inputs)
triple injects the identical fault sequence on every run — failures are
replayable, which is what makes the recovery tests deterministic.

Recovery itself lives one layer up: the ``execute_round`` funnel in
:mod:`repro.machine.collectives` checksums every payload before the
bytes move, verifies deliveries, and re-executes only the failed
transfers under the machine's :class:`~repro.machine.recovery.
RecoveryPolicy`. The wrapper also faults the retries, so an
"unrecoverable" policy (e.g. ``drop=1.0``) exhausts the retry budget
and surfaces as :class:`~repro.errors.MachineError` — never as a wrong
answer.

With every rate at zero the wrapper is a strict pass-through: no RNG
draws, no copies, no sleeps — delivered arrays and ledgers are
identical to running the inner transport bare.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.transport.base import Transfer, Transport

#: Fault kinds a policy can rate-control (``seed`` / ``delay_seconds``
#: are parameters, not kinds).
FAULT_KINDS = ("drop", "corrupt", "duplicate", "delay")


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded per-transfer fault rates for a :class:`FaultInjectingTransport`.

    ``drop`` / ``corrupt`` / ``duplicate`` are mutually exclusive per
    transfer (one uniform draw decides among them, so their rates must
    sum to at most 1). ``delay`` is drawn independently and composes
    with the others. All rates default to 0 — the disabled policy.
    """

    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 1e-4
    seed: int = 0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {kind}={rate} outside [0, 1]"
                )
        if self.drop + self.corrupt + self.duplicate > 1.0 + 1e-12:
            raise ConfigurationError(
                "drop + corrupt + duplicate rates exceed 1.0"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be >= 0")

    @property
    def enabled(self) -> bool:
        """True iff any fault kind has a nonzero rate."""
        return any(getattr(self, kind) > 0.0 for kind in FAULT_KINDS)

    @classmethod
    def parse(cls, spec: str) -> "FaultPolicy":
        """Build a policy from a CLI spec like ``"drop=0.1,corrupt=0.05,seed=7"``.

        Keys are the four fault kinds plus ``seed`` and
        ``delay_seconds``; unknown keys raise
        :class:`~repro.errors.ConfigurationError`.
        """
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"fault spec entry {part!r} is not key=value"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            try:
                if key == "seed":
                    kwargs[key] = int(value)
                elif key in FAULT_KINDS or key == "delay_seconds":
                    kwargs[key] = float(value)
                else:
                    raise ConfigurationError(
                        f"unknown fault key {key!r}; expected one of"
                        f" {', '.join(FAULT_KINDS)}, delay_seconds, seed"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"fault spec value {value!r} for {key!r} is not numeric"
                ) from None
        return cls(**kwargs)


@dataclass
class FaultStats:
    """Counts of injected faults, by kind, over a transport's lifetime."""

    exchanges: int = 0
    transfers: int = 0
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    delayed: int = 0

    @property
    def injected(self) -> int:
        """Total payload-visible faults (delays excluded — they are
        correct deliveries)."""
        return self.dropped + self.corrupted + self.duplicated

    def as_dict(self) -> dict:
        """JSON-friendly view for reports and the CLI."""
        return {
            "exchanges": self.exchanges,
            "transfers": self.transfers,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }


class FaultInjectingTransport:
    """Wrap ``inner`` and perturb its deliveries under ``policy``.

    Exposes the wrapped transport as :attr:`inner` and the injection
    counters as :attr:`stats`. Satisfies the :class:`Transport`
    protocol, so it slots anywhere a bare transport does (``Machine``,
    apps, the CLI ``--faults`` flag).
    """

    def __init__(self, inner: Transport, policy: FaultPolicy):
        self.inner = inner
        self.policy = policy
        self.P = inner.P
        self.name = f"fault+{inner.name}"
        self.stats = FaultStats()
        self._rng = np.random.default_rng(policy.seed)

    # -- fault application -----------------------------------------------------

    def _apply(self, delivered: List[np.ndarray]) -> List[np.ndarray]:
        policy = self.policy
        for index, array in enumerate(delivered):
            draw = self._rng.random()
            if draw < policy.drop:
                delivered[index] = np.zeros_like(array)
                self.stats.dropped += 1
            elif draw < policy.drop + policy.corrupt:
                if array.nbytes:
                    flat = array.reshape(-1).view(np.uint8)
                    flat[0] ^= 0xFF
                    flat[-1] ^= 0xFF
                    self.stats.corrupted += 1
            elif draw < policy.drop + policy.corrupt + policy.duplicate:
                if array.size:
                    doubled = np.concatenate([array.ravel(), array.ravel()])
                    delivered[index] = doubled
                    self.stats.duplicated += 1
            if policy.delay and self._rng.random() < policy.delay:
                time.sleep(policy.delay_seconds)
                self.stats.delayed += 1
        return delivered

    # -- Transport protocol ----------------------------------------------------

    def exchange(self, transfers: Sequence[Transfer]) -> List[np.ndarray]:
        """Deliver through the inner transport, then inject faults."""
        delivered = self.inner.exchange(transfers)
        if not self.policy.enabled:
            return delivered
        self.stats.exchanges += 1
        self.stats.transfers += len(delivered)
        return self._apply(list(delivered))

    def close(self) -> None:
        """Close the wrapped transport (idempotent)."""
        self.inner.close()

    def __enter__(self) -> "FaultInjectingTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getattr__(self, attr: str):
        # Forward backend-specific surface (rounds_executed, n_workers,
        # reset_stats, ...) so callers can treat the wrapper as the
        # transport it wraps.
        return getattr(self.inner, attr)

    def __repr__(self) -> str:
        return (
            f"FaultInjectingTransport({self.inner!r},"
            f" injected={self.stats.injected})"
        )
