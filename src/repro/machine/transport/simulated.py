"""In-process transport preserving the seed simulator's behavior.

Delivery is ``np.array(payload, copy=True)`` — exactly the copy the
pre-refactor collectives performed inline — so every algorithm that ran
on the monolithic machine layer produces bit-for-bit identical results
through this transport.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.machine.transport.base import Transfer, check_transfers
from repro.util.validation import check_positive_int


class SimulatedTransport:
    """Sequential, deterministic in-process delivery (the default)."""

    name = "simulated"

    def __init__(self, n_processors: int):
        self.P = check_positive_int(n_processors, "n_processors")

    def exchange(self, transfers: Sequence[Transfer]) -> List[np.ndarray]:
        """Deliver each payload as an independent in-process copy."""
        check_transfers(self.P, transfers)
        return [np.array(t.payload, copy=True) for t in transfers]

    def close(self) -> None:
        """No resources to release."""

    def reset_stats(self) -> None:
        """No counters to reset (kept for transport-generic callers)."""

    def __enter__(self) -> "SimulatedTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SimulatedTransport(P={self.P})"
