"""Message fusion: pack many scheduled transfers into few physical buffers.

The cost model charges α per message, and the repo's schedules already
prove the β (bandwidth) term optimal — so the remaining physical cost
is message *count*: the §7.2.2 point-to-point schedule moves one
message per ordered neighbor pair per round, and every one of those
messages pays per-transfer dispatch overhead in the shared-memory
backend (queue round-trips, per-buffer packing).

:class:`FusionPlan` is the packing layer the fused collectives funnel
(:func:`repro.machine.collectives.execute_rounds_fused`) builds over a
*batch* of logical rounds: all transfers bound for the same destination
— including multiple transfers of the same ``(src, dst)`` pair when a
batch contains several — are packed into one contiguous ``float64``
buffer behind a self-describing header, moved as a single physical
transfer, and unpacked into bitwise-identical member payloads on
delivery. This is the same-destination group-buffer pattern of
production gradient-communication stacks (the kfac ``TensorGroup``
exemplar): message count drops from O(transfers) to O(active
destinations) per batch.

Wire format (one fused buffer, all ``float64`` words)::

    [ MAGIC, k,
      src_0, words_0, ..., src_{k-1}, words_{k-1},
      payload_0 words..., ..., payload_{k-1} words... ]

The header is validated structurally on unpack — magic word, member
count, per-member sources and word counts, total length — against the
*plan* (derived from the schedule before any bytes moved), so a
dropped (zeroed), corrupted (bit-flipped), or duplicated (doubled)
fused buffer is detected even before per-member checksums run, and
every member of a failed group is handed back to the caller for
individual unfused redelivery through the normal recovery path.

Fusion is an execution detail of the *physical* layer: the algorithmic
ledger is priced from the unfused logical schedule (labels, counts,
and round order unchanged — the paper's closed-form assertions never
move), and fusion savings are recorded in the ledger's ``fused_*``
side-channel, mirroring the ``retry_*`` recovery pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.machine.transport.base import Transfer

#: Sentinel first word of every fused buffer (8 ASCII bytes as float64).
_MAGIC_BYTES = b"FUSEDv1\x00"
MAGIC = float(np.frombuffer(_MAGIC_BYTES, dtype=np.float64)[0])

#: Header words before the member table: [MAGIC, member_count].
_PREAMBLE_WORDS = 2

#: Header words per member: [source, words].
_MEMBER_HEADER_WORDS = 2


def fusible_payload(payload: np.ndarray) -> bool:
    """True iff ``payload`` can ride in a fused buffer losslessly.

    Fused buffers are flat ``float64`` arrays, so only one-dimensional
    ``float64`` payloads round-trip with their shape and dtype intact
    (anything else would come back reshaped and break the bitwise
    contract). Callers fall back to unfused per-round execution for
    batches containing anything fancier.
    """
    return (
        isinstance(payload, np.ndarray)
        and payload.dtype == np.float64
        and payload.ndim == 1
    )


@dataclass
class FusedGroup:
    """One physical buffer: every batched transfer bound for ``dest``."""

    dest: int
    #: Rank stamped on the physical :class:`Transfer` (the first
    #: member's source; true per-member sources live in the header).
    source: int
    #: Indices into the flat member list, in batch order.
    members: List[int] = field(default_factory=list)


@dataclass
class FusionStats:
    """Logical-vs-physical accounting of one fused batch."""

    messages_logical: int = 0
    messages_fused: int = 0
    words_logical: int = 0
    words_fused: int = 0

    @property
    def header_words(self) -> int:
        """Framing overhead the fused schedule adds on the wire."""
        return self.words_fused - self.words_logical


class FusionPlan:
    """Destination-grouped packing of one batch of logical transfers.

    Parameters
    ----------
    transfers:
        The flattened logical schedule (a batch of rounds' transfers,
        in round order). Group membership, buffer layout, and the
        validation fingerprint are all derived here — before any bytes
        move — so unpack can verify deliveries against the schedule.
    """

    def __init__(self, transfers: Sequence[Transfer]):
        self.transfers: List[Transfer] = list(transfers)
        self.fusible = all(fusible_payload(t.payload) for t in self.transfers)
        self.groups: List[FusedGroup] = []
        self._group_of_dest: Dict[int, FusedGroup] = {}
        if not self.fusible:
            return
        for index, transfer in enumerate(self.transfers):
            group = self._group_of_dest.get(transfer.dest)
            if group is None:
                group = FusedGroup(dest=transfer.dest, source=transfer.source)
                self._group_of_dest[transfer.dest] = group
                self.groups.append(group)
            group.members.append(index)

    # -- accounting ------------------------------------------------------------

    def stats(self) -> FusionStats:
        """Logical vs physical message/word counts of this batch."""
        words_logical = sum(t.payload.size for t in self.transfers)
        words_fused = sum(self._buffer_words(g) for g in self.groups)
        return FusionStats(
            messages_logical=len(self.transfers),
            messages_fused=len(self.groups),
            words_logical=words_logical,
            words_fused=words_fused,
        )

    def _buffer_words(self, group: FusedGroup) -> int:
        payload_words = sum(
            self.transfers[m].payload.size for m in group.members
        )
        return (
            _PREAMBLE_WORDS
            + _MEMBER_HEADER_WORDS * len(group.members)
            + payload_words
        )

    # -- packing ---------------------------------------------------------------

    def pack(self) -> List[Transfer]:
        """Build the physical schedule: one header-framed buffer per group."""
        physical: List[Transfer] = []
        for group in self.groups:
            members = group.members
            buf = np.empty(self._buffer_words(group))
            buf[0] = MAGIC
            buf[1] = float(len(members))
            cursor = _PREAMBLE_WORDS + _MEMBER_HEADER_WORDS * len(members)
            for slot, m in enumerate(members):
                transfer = self.transfers[m]
                words = transfer.payload.size
                buf[_PREAMBLE_WORDS + 2 * slot] = float(transfer.source)
                buf[_PREAMBLE_WORDS + 2 * slot + 1] = float(words)
                buf[cursor : cursor + words] = transfer.payload
                cursor += words
            physical.append(Transfer(group.source, group.dest, buf))
        return physical

    # -- unpacking -------------------------------------------------------------

    def unpack(
        self, delivered: Sequence[np.ndarray]
    ) -> Tuple[List[Optional[np.ndarray]], List[int]]:
        """Split delivered fused buffers back into member payloads.

        Returns ``(payloads, failed)``: one array per logical transfer
        (views into the delivered buffers — bitwise identical to the
        packed payloads), and the indices of every member whose group
        buffer failed structural validation (wrong magic, member table,
        or length). Failed members get ``None`` payloads; the caller
        redelivers them individually through the recovery path.
        """
        payloads: List[Optional[np.ndarray]] = [None] * len(self.transfers)
        failed: List[int] = []
        for group, buf in zip(self.groups, delivered):
            if not self._validate(group, buf):
                failed.extend(group.members)
                continue
            members = group.members
            cursor = _PREAMBLE_WORDS + _MEMBER_HEADER_WORDS * len(members)
            for m in members:
                words = self.transfers[m].payload.size
                payloads[m] = buf[cursor : cursor + words]
                cursor += words
        return payloads, failed

    def _validate(self, group: FusedGroup, buf: np.ndarray) -> bool:
        """Structural check of one delivered buffer against the plan."""
        members = group.members
        expected_words = self._buffer_words(group)
        if (
            not isinstance(buf, np.ndarray)
            or buf.dtype != np.float64
            or buf.ndim != 1
            or buf.size != expected_words
        ):
            return False
        if buf[:1].tobytes() != _MAGIC_BYTES:
            return False
        if buf[1] != float(len(members)):
            return False
        for slot, m in enumerate(members):
            transfer = self.transfers[m]
            if buf[_PREAMBLE_WORDS + 2 * slot] != float(transfer.source):
                return False
            if buf[_PREAMBLE_WORDS + 2 * slot + 1] != float(
                transfer.payload.size
            ):
                return False
        return True


__all__ = ["MAGIC", "FusedGroup", "FusionPlan", "FusionStats", "fusible_payload"]
