"""The Transport protocol: *who moves the bytes* of a communication round.

The machine layer separates three concerns that the paper's model keeps
distinct as well:

* **Transport** (this protocol) — actually delivering payloads between
  processors, one synchronous round at a time. Implementations range
  from an in-process copy loop (:class:`~repro.machine.transport.
  simulated.SimulatedTransport`) to worker processes copying through
  OS shared memory (:class:`~repro.machine.transport.shm.
  SharedMemoryTransport`).
* **CostModel** (:mod:`repro.machine.cost`) — pricing the *schedule* of
  a round into the :class:`~repro.machine.ledger.CommunicationLedger`.
  Costs are a pure function of the transfer list, so word / message /
  round counts are identical no matter which transport moved the bytes.
* **Instrumentation** (:mod:`repro.obs.instrument`) — wall-clock
  spans around phases, for benchmarks and traces.

A transport receives the full round as an ordered list of
:class:`Transfer` records and returns the delivered arrays in the same
order. Deliveries must be *copies*: mutating a sender-side payload
after ``exchange`` returns must never be observable at the receiver.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import MachineError


@dataclass(frozen=True)
class Transfer:
    """One scheduled point-to-point payload of a synchronous round.

    Attributes
    ----------
    source, dest:
        Processor ranks; ``source != dest`` (local movement never goes
        through a transport).
    payload:
        The array to deliver. May be empty (zero words); collectives
        decide whether such transfers are scheduled at all.
    """

    source: int
    dest: int
    payload: np.ndarray


@runtime_checkable
class Transport(Protocol):
    """Minimal interface every backend implements.

    Attributes
    ----------
    name:
        Stable backend identifier (``"simulated"``, ``"shm"``) used by
        CLI flags and benchmark reports.
    P:
        Number of processors the transport connects.
    """

    name: str
    P: int

    def exchange(self, transfers: Sequence[Transfer]) -> List[np.ndarray]:
        """Execute one synchronous round.

        Returns one delivered array per transfer, in input order; each
        is an independent copy of the corresponding payload.
        """
        ...

    def close(self) -> None:
        """Release any resources (worker processes, shared segments).

        Must be idempotent; the in-process transport makes it a no-op.
        """
        ...


def payload_checksum(array: np.ndarray) -> int:
    """CRC-32 over a payload's dtype, shape, and bytes.

    This is the integrity fingerprint ``execute_round`` computes from
    the schedule before any transport moves bytes, and again over each
    delivered array afterwards: a drop (zeroed buffer), corruption
    (flipped bits), or duplication (doubled bytes, hence a different
    shape) all change the digest, so a mismatch is sufficient evidence
    to re-execute the transfer.
    """
    digest = zlib.crc32(array.dtype.str.encode())
    digest = zlib.crc32(repr(array.shape).encode(), digest)
    return zlib.crc32(array.tobytes(), digest)


def check_transfers(P: int, transfers: Sequence[Transfer]) -> None:
    """Validate ranks of a round's transfers against ``P`` processors."""
    for t in transfers:
        if not (0 <= t.source < P and 0 <= t.dest < P):
            raise MachineError(
                f"transfer {t.source}->{t.dest} references unknown"
                f" processor (P={P})"
            )
        if t.source == t.dest:
            raise MachineError(f"transfer at rank {t.source} is a self-send")
