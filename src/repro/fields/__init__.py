"""Finite fields GF(p^k).

The spherical Steiner construction (paper Theorem 6.5) needs arithmetic
in ``F_{q**2}`` for a prime power ``q``, i.e. fields of order ``p**(2a)``.
This package provides:

* :mod:`repro.fields.primes` — primality and prime-power recognition,
* :mod:`repro.fields.polynomials` — dense polynomial arithmetic over
  GF(p) and irreducible-polynomial search,
* :mod:`repro.fields.gf` — the :class:`GF` field class with elements
  represented as integers (polynomial coefficient vectors packed in
  base p), supporting +, -, *, /, powers and inverses.
"""

from repro.fields.primes import (
    is_prime,
    is_prime_power,
    prime_power_decomposition,
    prime_powers_up_to,
    next_prime_power,
)
from repro.fields.gf import GF, GFElement

__all__ = [
    "is_prime",
    "is_prime_power",
    "prime_power_decomposition",
    "prime_powers_up_to",
    "next_prime_power",
    "GF",
    "GFElement",
]
