"""Primality and prime-power utilities.

The partition machinery requires ``P = q (q**2 + 1)`` for a *prime
power* ``q`` (paper §6.1); these helpers recognize admissible ``q``
values and enumerate candidates for sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FieldError
from repro.util.validation import check_positive_int

# Deterministic Miller-Rabin witnesses valid for all 64-bit integers.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic primality test (Miller-Rabin, exact below 3.3e24)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _integer_nth_root(n: int, k: int) -> int:
    """Floor of the k-th root of n, exact integer arithmetic."""
    if n < 0:
        raise FieldError("nth root of negative number")
    if n in (0, 1):
        return n
    lo, hi = 1, 1 << ((n.bit_length() + k - 1) // k + 1)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid**k <= n:
            lo = mid
        else:
            hi = mid - 1
    return lo


def prime_power_decomposition(n: int) -> Optional[Tuple[int, int]]:
    """Return ``(p, k)`` with ``n == p**k`` and ``p`` prime, else ``None``.

    >>> prime_power_decomposition(9)
    (3, 2)
    >>> prime_power_decomposition(12) is None
    True
    """
    n = check_positive_int(n, "n")
    if n == 1:
        return None
    for k in range(n.bit_length(), 0, -1):
        root = _integer_nth_root(n, k)
        if root**k == n and is_prime(root):
            return root, k
    return None


def is_prime_power(n: int) -> bool:
    """True iff ``n == p**k`` for prime ``p`` and integer ``k >= 1``."""
    return prime_power_decomposition(n) is not None


def prime_powers_up_to(limit: int) -> List[int]:
    """All prime powers ``q`` with ``2 <= q <= limit``, ascending."""
    limit = check_positive_int(limit, "limit")
    return [q for q in range(2, limit + 1) if is_prime_power(q)]


def next_prime_power(n: int) -> int:
    """Smallest prime power ``>= n`` (``n >= 2`` required)."""
    n = check_positive_int(n, "n")
    if n < 2:
        n = 2
    q = n
    while not is_prime_power(q):
        q += 1
    return q


def factorize(n: int) -> List[Tuple[int, int]]:
    """Full prime factorization as sorted ``(prime, exponent)`` pairs.

    Trial division; adequate for the parameter ranges used here
    (processor counts and field orders, well below 10**12).
    """
    n = check_positive_int(n, "n")
    factors: List[Tuple[int, int]] = []
    remaining = n
    candidate = 2
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            exponent = 0
            while remaining % candidate == 0:
                remaining //= candidate
                exponent += 1
            factors.append((candidate, exponent))
        candidate += 1 if candidate == 2 else 2
    if remaining > 1:
        factors.append((remaining, 1))
    return factors
