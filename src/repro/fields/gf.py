"""Finite fields GF(p^k) with table-accelerated arithmetic.

Elements are integers in ``range(q)`` encoding polynomial coefficient
vectors in base ``p`` (the integer ``c0 + c1*p + c2*p**2 + ...``
encodes ``c0 + c1 x + c2 x**2 + ...``). The field precomputes
discrete-log tables over a primitive element, so multiplication,
division and inversion are O(1) lookups — important because the
spherical Steiner construction evaluates ``(q**2+1) q**2 (q**2-1)``
Möbius maps.

The wrapper class :class:`GFElement` provides natural operator syntax
and is what :mod:`repro.projective` works with.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FieldError
from repro.fields import polynomials as poly
from repro.fields.primes import prime_power_decomposition


class GF:
    """The finite field of order ``q = p**k``.

    Parameters
    ----------
    order:
        Field order; must be a prime power.
    modulus:
        Optional explicit irreducible polynomial (coefficient tuple,
        lowest degree first, of degree ``k``) to quotient by. If omitted
        the lexicographically first monic irreducible is used, making
        constructions deterministic across runs.

    Examples
    --------
    >>> F9 = GF(9)
    >>> a = F9.element(5)
    >>> (a * a.inverse()).value
    1
    """

    def __init__(self, order: int, modulus: Optional[tuple] = None):
        decomposition = prime_power_decomposition(order)
        if decomposition is None:
            raise FieldError(f"{order} is not a prime power")
        self.order = order
        self.characteristic, self.degree = decomposition
        p, k = decomposition
        if modulus is None:
            modulus = poly.find_irreducible(p, k)
        else:
            modulus = poly.normalize(modulus, p)
            if poly.degree(modulus) != k:
                raise FieldError(
                    f"modulus degree {poly.degree(modulus)} != field degree {k}"
                )
            if not poly.is_irreducible(modulus, p):
                raise FieldError(f"modulus {modulus} is reducible over GF({p})")
        self.modulus = modulus
        self._build_tables()

    # -- encoding ---------------------------------------------------------

    def _encode(self, coeffs: tuple) -> int:
        value = 0
        for c in reversed(coeffs):
            value = value * self.characteristic + c
        return value

    def _decode(self, value: int) -> tuple:
        coeffs = []
        p = self.characteristic
        while value:
            coeffs.append(value % p)
            value //= p
        return tuple(coeffs)

    # -- table construction ------------------------------------------------

    def _raw_mul(self, a: int, b: int) -> int:
        product = poly.mod(
            poly.multiply(self._decode(a), self._decode(b), self.characteristic),
            self.modulus,
            self.characteristic,
        )
        return self._encode(product)

    def _build_tables(self) -> None:
        q = self.order
        # Addition is componentwise mod p; precompute as a flat table for
        # small fields (q^2 entries), else compute on demand.
        generator = self._find_generator()
        self._exp: List[int] = [0] * (2 * (q - 1))
        self._log: List[int] = [0] * q  # log[0] unused
        acc = 1
        for i in range(q - 1):
            self._exp[i] = acc
            self._log[acc] = i
            acc = self._raw_mul(acc, generator)
        if acc != 1:
            raise FieldError("generator order mismatch while building tables")
        for i in range(q - 1, 2 * (q - 1)):
            self._exp[i] = self._exp[i - (q - 1)]
        self.generator = generator

    def _multiplicative_order(self, a: int) -> int:
        if a == 0:
            raise FieldError("0 has no multiplicative order")
        acc = a
        order = 1
        while acc != 1:
            acc = self._raw_mul(acc, a)
            order += 1
        return order

    def _find_generator(self) -> int:
        target = self.order - 1
        for candidate in range(2, self.order):
            if candidate == 0:
                continue
            if self._multiplicative_order(candidate) == target:
                return candidate
        if self.order == 2:
            return 1
        raise FieldError("no generator found (internal error)")

    # -- arithmetic on raw integer codes ------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition on integer codes (componentwise mod p)."""
        p = self.characteristic
        if self.degree == 1:
            return (a + b) % p
        result = 0
        scale = 1
        while a or b:
            result += ((a % p) + (b % p)) % p * scale
            a //= p
            b //= p
            scale *= p
        return result

    def neg(self, a: int) -> int:
        """Additive inverse on integer codes."""
        p = self.characteristic
        if self.degree == 1:
            return (-a) % p
        result = 0
        scale = 1
        while a:
            result += (-(a % p)) % p * scale
            a //= p
            scale *= p
        return result

    def sub(self, a: int, b: int) -> int:
        """Field subtraction on integer codes."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via discrete-log tables."""
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if a == 0:
            raise FieldError("division by zero in GF")
        return self._exp[(self.order - 1 - self._log[a]) % (self.order - 1)]

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """Field exponentiation ``a ** e`` (e may be negative for a != 0)."""
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise FieldError("0 cannot be raised to a negative power")
            return 0
        exponent = self._log[a] * e % (self.order - 1)
        return self._exp[exponent]

    # -- element API --------------------------------------------------------

    def element(self, value: int) -> "GFElement":
        """Wrap an integer code in range(q) as a field element."""
        if not 0 <= value < self.order:
            raise FieldError(
                f"value {value} out of range for GF({self.order})"
            )
        return GFElement(self, value)

    def zero(self) -> "GFElement":
        """The additive identity."""
        return GFElement(self, 0)

    def one(self) -> "GFElement":
        """The multiplicative identity."""
        return GFElement(self, 1)

    def elements(self) -> List["GFElement"]:
        """All q field elements in code order."""
        return [GFElement(self, v) for v in range(self.order)]

    def subfield_codes(self, suborder: int) -> List[int]:
        """Integer codes of the subfield of order ``suborder``.

        ``GF(p^m)`` contains ``GF(p^d)`` iff ``d | m``; its elements are
        exactly the solutions of ``x**suborder == x``. This realizes the
        paper's "natural inclusion of F_q ∪ {∞} in F_{q^α} ∪ {∞}"
        (Theorem 6.5) concretely inside our representation.
        """
        decomposition = prime_power_decomposition(suborder)
        if decomposition is None:
            raise FieldError(f"{suborder} is not a prime power")
        p, d = decomposition
        if p != self.characteristic or self.degree % d != 0:
            raise FieldError(
                f"GF({suborder}) is not a subfield of GF({self.order})"
            )
        return [a for a in range(self.order) if self.pow(a, suborder) == a]

    # -- dunder -------------------------------------------------------------

    def __len__(self) -> int:
        return self.order

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GF)
            and other.order == self.order
            and other.modulus == self.modulus
        )

    def __hash__(self) -> int:
        return hash((self.order, self.modulus))

    def __repr__(self) -> str:
        return f"GF({self.order})"


class GFElement:
    """An element of a :class:`GF` field with operator overloads.

    Instances are immutable value objects; arithmetic between elements
    of different fields raises :class:`~repro.errors.FieldError`.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: GF, value: int):
        self.field = field
        self.value = value

    def _coerce(self, other) -> int:
        if isinstance(other, GFElement):
            if other.field != self.field:
                raise FieldError("mixing elements of different fields")
            return other.value
        if isinstance(other, int):
            # The canonical ring homomorphism Z -> GF(p^k) sends n to
            # n * 1, i.e. the constant polynomial n mod p.
            return other % self.field.characteristic
        raise FieldError(f"cannot coerce {other!r} into {self.field!r}")

    def __add__(self, other):
        return GFElement(self.field, self.field.add(self.value, self._coerce(other)))

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return GFElement(self.field, self.field.sub(self.value, self._coerce(other)))

    def __rsub__(self, other):
        return GFElement(self.field, self.field.sub(self._coerce(other), self.value))

    def __mul__(self, other):
        return GFElement(self.field, self.field.mul(self.value, self._coerce(other)))

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return GFElement(self.field, self.field.div(self.value, self._coerce(other)))

    def __rtruediv__(self, other):
        return GFElement(self.field, self.field.div(self._coerce(other), self.value))

    def __neg__(self):
        return GFElement(self.field, self.field.neg(self.value))

    def __pow__(self, exponent: int):
        return GFElement(self.field, self.field.pow(self.value, exponent))

    def inverse(self) -> "GFElement":
        """Multiplicative inverse."""
        return GFElement(self.field, self.field.inv(self.value))

    def is_zero(self) -> bool:
        """True iff this is the additive identity."""
        return self.value == 0

    def __eq__(self, other) -> bool:
        if isinstance(other, GFElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.order, self.value))

    def __repr__(self) -> str:
        return f"GF{self.field.order}({self.value})"
