"""Dense polynomial arithmetic over GF(p) and irreducibility testing.

Polynomials are represented as tuples of coefficients, *lowest degree
first*, with no trailing zeros (the zero polynomial is the empty
tuple). All coefficients live in ``range(p)`` for a prime modulus
``p``. This is the machinery used to build GF(p^k) as
``GF(p)[x] / (f)`` for an irreducible ``f`` of degree ``k``.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import FieldError
from repro.fields.primes import is_prime

Poly = Tuple[int, ...]


def normalize(coeffs: Iterable[int], p: int) -> Poly:
    """Reduce coefficients mod p and strip trailing zeros."""
    reduced = [c % p for c in coeffs]
    while reduced and reduced[-1] == 0:
        reduced.pop()
    return tuple(reduced)


def degree(poly: Poly) -> int:
    """Degree of ``poly``; the zero polynomial has degree -1."""
    return len(poly) - 1


def add(a: Poly, b: Poly, p: int) -> Poly:
    """Sum of two polynomials over GF(p)."""
    length = max(len(a), len(b))
    out = [0] * length
    for idx, coeff in enumerate(a):
        out[idx] += coeff
    for idx, coeff in enumerate(b):
        out[idx] += coeff
    return normalize(out, p)


def negate(a: Poly, p: int) -> Poly:
    """Additive inverse over GF(p)."""
    return normalize([-c for c in a], p)


def subtract(a: Poly, b: Poly, p: int) -> Poly:
    """Difference ``a - b`` over GF(p)."""
    return add(a, negate(b, p), p)


def multiply(a: Poly, b: Poly, p: int) -> Poly:
    """Product of two polynomials over GF(p) (schoolbook; degrees are tiny)."""
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] = (out[i + j] + ca * cb) % p
    return normalize(out, p)


def divmod_poly(a: Poly, b: Poly, p: int) -> Tuple[Poly, Poly]:
    """Quotient and remainder of ``a / b`` over GF(p).

    Raises
    ------
    FieldError
        If ``b`` is the zero polynomial.
    """
    if not b:
        raise FieldError("polynomial division by zero")
    remainder = list(a)
    quotient = [0] * max(len(a) - len(b) + 1, 0)
    lead_inv = pow(b[-1], p - 2, p)
    while len(remainder) >= len(b) and any(remainder):
        # Strip leading zeros that cancellation may have produced.
        while remainder and remainder[-1] == 0:
            remainder.pop()
        if len(remainder) < len(b):
            break
        shift = len(remainder) - len(b)
        factor = remainder[-1] * lead_inv % p
        quotient[shift] = factor
        for idx, coeff in enumerate(b):
            remainder[shift + idx] = (remainder[shift + idx] - factor * coeff) % p
    return normalize(quotient, p), normalize(remainder, p)


def mod(a: Poly, b: Poly, p: int) -> Poly:
    """Remainder of ``a`` modulo ``b`` over GF(p)."""
    return divmod_poly(a, b, p)[1]


def pow_mod(base: Poly, exponent: int, modulus: Poly, p: int) -> Poly:
    """``base ** exponent`` reduced modulo ``modulus`` over GF(p)."""
    result: Poly = (1,)
    base = mod(base, modulus, p)
    e = exponent
    while e > 0:
        if e & 1:
            result = mod(multiply(result, base, p), modulus, p)
        base = mod(multiply(base, base, p), modulus, p)
        e >>= 1
    return result


def gcd(a: Poly, b: Poly, p: int) -> Poly:
    """Monic greatest common divisor over GF(p)."""
    while b:
        a, b = b, mod(a, b, p)
    if a:
        inv = pow(a[-1], p - 2, p)
        a = normalize([c * inv for c in a], p)
    return a


def is_irreducible(poly: Poly, p: int) -> bool:
    """Rabin's irreducibility test for ``poly`` over GF(p).

    ``f`` of degree ``k`` is irreducible iff ``x**(p**k) == x (mod f)``
    and ``gcd(x**(p**(k/r)) - x, f) == 1`` for every prime divisor
    ``r`` of ``k``.
    """
    k = degree(poly)
    if k <= 0:
        return False
    if k == 1:
        return True
    x: Poly = (0, 1)
    # Distinct prime divisors of k.
    divisors = []
    kk = k
    d = 2
    while d * d <= kk:
        if kk % d == 0:
            divisors.append(d)
            while kk % d == 0:
                kk //= d
        d += 1
    if kk > 1:
        divisors.append(kk)
    for r in divisors:
        power = pow_mod(x, p ** (k // r), poly, p)
        if gcd(subtract(power, x, p), poly, p) != (1,):
            return False
    final = pow_mod(x, p**k, poly, p)
    return final == x


def find_irreducible(p: int, k: int) -> Poly:
    """Find a monic irreducible polynomial of degree ``k`` over GF(p).

    Deterministic exhaustive search in lexicographic order of the low
    ``k`` coefficients — fine for the small degrees used by the Steiner
    constructions (k <= 8 in practice). Degree-1 returns ``x``.
    """
    if not is_prime(p):
        raise FieldError(f"modulus {p} is not prime")
    if k < 1:
        raise FieldError(f"degree must be >= 1, got {k}")
    if k == 1:
        return (0, 1)
    for code in range(p**k):
        coeffs = []
        c = code
        for _ in range(k):
            coeffs.append(c % p)
            c //= p
        candidate = normalize(coeffs + [1], p)
        if degree(candidate) == k and is_irreducible(candidate, p):
            return candidate
    raise FieldError(f"no irreducible polynomial of degree {k} over GF({p})")
