"""Small argument-validation helpers used across the library.

These keep error messages uniform and make preconditions explicit at the
public API boundary, per the paper's parameter constraints (prime-power
``q``, divisibility of ``n`` by ``q**2 + 1``, etc.).
"""

from __future__ import annotations

import numbers

from repro.errors import ConfigurationError


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is a positive integer.

    Raises
    ------
    ConfigurationError
        If ``value`` is not an integral number or is ``< 1``.
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(value, name: str) -> int:
    """Return ``value`` as ``int`` if it is an integer ``>= 0``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value, name: str, low, high) -> None:
    """Validate ``low <= value <= high`` (inclusive both ends)."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value}"
        )


def check_probability(value, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as float."""
    if not isinstance(value, numbers.Real):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_divides(divisor: int, dividend: int, context: str) -> None:
    """Raise unless ``divisor`` divides ``dividend`` exactly."""
    if dividend % divisor != 0:
        raise ConfigurationError(
            f"{context}: {divisor} does not divide {dividend}"
        )
