"""Random-number-generator normalization.

Every stochastic entry point in the library accepts a ``seed`` argument
that may be ``None``, an integer, or an existing
:class:`numpy.random.Generator`; this module provides the single
conversion point so results are reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing an existing generator returns it unchanged (so callers can
    thread one generator through a pipeline); an integer builds a fresh
    PCG64 generator; ``None`` draws OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` statistically independent children.

    Useful when simulating P processors that each need a private stream
    whose draws do not depend on processor execution order.
    """
    bit_gen = rng.bit_generator
    seeds = bit_gen.seed_seq.spawn(count)
    return [np.random.Generator(type(bit_gen)(s)) for s in seeds]
