"""Shared utilities: argument validation, combinatorics, RNG handling."""

from repro.util.combinatorics import (
    binomial,
    tetrahedral_number,
    triangular_number,
    strict_tetrahedral_number,
    falling_factorial,
)
from repro.util.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_in_range,
    check_probability,
)
from repro.util.seeding import as_generator

__all__ = [
    "binomial",
    "tetrahedral_number",
    "triangular_number",
    "strict_tetrahedral_number",
    "falling_factorial",
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_probability",
    "as_generator",
]
