"""Counting helpers for tetrahedral iteration spaces and designs.

The paper repeatedly uses three counts of the 3-D symmetric iteration
space of side ``n`` (all formulas exact, integer arithmetic):

* lower tetrahedron (``i >= j >= k``): ``n(n+1)(n+2)/6`` points,
* strict lower tetrahedron (``i > j > k``): ``n(n-1)(n-2)/6`` points,
* lower triangle (``i >= j``): ``n(n+1)/2`` points.
"""

from __future__ import annotations

import math

from repro.util.validation import check_nonnegative_int


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``C(n, k)`` with ``C(n, k) = 0`` for k < 0 or k > n."""
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def falling_factorial(n: int, k: int) -> int:
    """Falling factorial ``n (n-1) ... (n-k+1)``; equals ``k! C(n,k)``."""
    check_nonnegative_int(k, "k")
    result = 1
    for offset in range(k):
        result *= n - offset
    return result


def triangular_number(n: int) -> int:
    """Lower-triangle entry count of an ``n x n`` symmetric matrix.

    Counts pairs ``(i, j)`` with ``i >= j`` over ``n`` indices:
    ``n (n + 1) / 2``.
    """
    n = check_nonnegative_int(n, "n")
    return n * (n + 1) // 2


def tetrahedral_number(n: int) -> int:
    """Entries in the lower tetrahedron of an ``n^3`` symmetric tensor.

    Counts triples ``i >= j >= k`` drawn from ``n`` indices:
    ``n (n + 1) (n + 2) / 6`` (the paper's iteration-space size, §3).
    """
    n = check_nonnegative_int(n, "n")
    return n * (n + 1) * (n + 2) // 6


def strict_tetrahedral_number(n: int) -> int:
    """Entries in the *strict* lower tetrahedron (``i > j > k``).

    Equals ``n (n - 1) (n - 2) / 6 = C(n, 3)``; this is the quantity
    divided by ``P`` in the paper's lower-bound constraints (Lemma 5.1).
    """
    n = check_nonnegative_int(n, "n")
    return n * (n - 1) * (n - 2) // 6


def ternary_multiplication_count_symmetric(n: int) -> int:
    """Ternary multiplications performed by Algorithm 4: ``n^2 (n + 1) / 2``.

    Derivation (paper §3): 3 per strict-lower point, 2 per non-central
    diagonal point, 1 per central diagonal point:
    ``3 C(n,3) + 2 n(n-1) + n = n^2 (n+1) / 2``.
    """
    n = check_nonnegative_int(n, "n")
    return n * n * (n + 1) // 2


def ternary_multiplication_count_naive(n: int) -> int:
    """Ternary multiplications performed by Algorithm 3: ``n^3``."""
    n = check_nonnegative_int(n, "n")
    return n**3
